"""Unit tests for the predicate registry and the selection API."""

from __future__ import annotations

import pytest

from repro.core import ApproximateSelector, SelectionResult, available_predicates, make_predicate
from repro.core.predicates import (
    BM25,
    GES,
    HMM,
    CosineTfIdf,
    EditDistance,
    GESApx,
    GESJaccard,
    IntersectSize,
    Jaccard,
    LanguageModeling,
    Predicate,
    SoftTFIDF,
    WeightedJaccard,
    WeightedMatch,
)


class TestRegistry:
    def test_all_thirteen_predicates_registered(self):
        assert len(available_predicates()) == 13

    def test_make_each_predicate(self):
        expected = {
            "intersect": IntersectSize,
            "jaccard": Jaccard,
            "weighted_match": WeightedMatch,
            "weighted_jaccard": WeightedJaccard,
            "cosine": CosineTfIdf,
            "bm25": BM25,
            "lm": LanguageModeling,
            "hmm": HMM,
            "edit_distance": EditDistance,
            "ges": GES,
            "ges_jaccard": GESJaccard,
            "ges_apx": GESApx,
            "soft_tfidf": SoftTFIDF,
        }
        for name, cls in expected.items():
            assert isinstance(make_predicate(name), cls)

    def test_aliases(self):
        assert isinstance(make_predicate("tf-idf"), CosineTfIdf)
        assert isinstance(make_predicate("ED"), EditDistance)
        assert isinstance(make_predicate("WeightedJaccard"), WeightedJaccard)
        assert isinstance(make_predicate("SoftTFIDF"), SoftTFIDF)

    def test_kwargs_forwarded(self):
        predicate = make_predicate("ges_jaccard", threshold=0.6)
        assert predicate.threshold == 0.6

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_predicate("soundex")

    def test_every_predicate_declares_its_family(self):
        families = {
            make_predicate(name).family for name in available_predicates()
        }
        assert families == {
            "overlap",
            "aggregate-weighted",
            "language-modeling",
            "edit-based",
            "combination",
        }


class TestMergedRegistryCoincidence:
    """The merged engine registry is the single source of truth: the direct
    and declarative factories must accept exactly the same names."""

    def test_name_sets_coincide(self):
        from repro.declarative import available_declarative_predicates

        assert set(available_predicates()) == set(available_declarative_predicates())

    def test_realization_views_coincide(self):
        from repro.engine import registry

        assert registry.available_predicates("direct") == registry.available_predicates(
            "declarative"
        )
        assert registry.available_predicates() == available_predicates()

    def test_every_alias_resolves_in_both_factories(self):
        from repro.declarative import make_declarative_predicate
        from repro.engine import registry

        for alias, canonical in registry.ALIASES.items():
            assert make_predicate(alias).name == make_predicate(canonical).name
            assert (
                make_declarative_predicate(alias).name
                == make_declarative_predicate(canonical).name
            )

    def test_canonical_names_construct_in_both_realizations(self):
        from repro.declarative import make_declarative_predicate

        for name in available_predicates():
            assert make_predicate(name) is not None
            assert make_declarative_predicate(name) is not None


class TestApproximateSelector:
    def test_selector_with_name(self, company_strings):
        selector = ApproximateSelector(company_strings, predicate="bm25")
        results = selector.top_k("Morgn Stanley Inc", k=1)
        assert results[0].tid == 0
        assert isinstance(results[0], SelectionResult)
        assert results[0].text == company_strings[0]

    def test_selector_with_instance(self, company_strings):
        selector = ApproximateSelector(company_strings, predicate=Jaccard())
        assert selector.predicate.name == "Jaccard"

    def test_kwargs_only_with_name(self, company_strings):
        with pytest.raises(ValueError):
            ApproximateSelector(company_strings, predicate=Jaccard(), q=3)

    def test_select_threshold(self, company_strings):
        selector = ApproximateSelector(company_strings, predicate="jaccard")
        results = selector.select("Beijing Hotel", threshold=0.5)
        assert {r.tid for r in results} >= {5}
        assert all(r.score >= 0.5 for r in results)

    def test_rank_returns_texts(self, company_strings):
        selector = ApproximateSelector(company_strings, predicate="cosine")
        for result in selector.rank("AT&T Inc."):
            assert result.text == company_strings[result.tid]

    def test_top_k_negative(self, company_strings):
        selector = ApproximateSelector(company_strings, predicate="jaccard")
        with pytest.raises(ValueError):
            selector.top_k("x", k=-1)

    def test_score(self, company_strings):
        selector = ApproximateSelector(company_strings, predicate="jaccard")
        assert selector.score(company_strings[2], 2) == pytest.approx(1.0)

    def test_len_and_strings(self, company_strings):
        selector = ApproximateSelector(company_strings, predicate="intersect")
        assert len(selector) == len(company_strings)
        assert selector.strings == list(company_strings)

    def test_unfitted_predicate_rejected_at_query(self):
        predicate = Jaccard()
        with pytest.raises(RuntimeError):
            predicate.rank("x")

    def test_every_registered_predicate_finds_exact_duplicate(self, company_strings):
        """End-to-end sanity: each predicate ranks an exact copy first."""
        for name in available_predicates():
            selector = ApproximateSelector(company_strings, predicate=name)
            top = selector.top_k(company_strings[0], k=1)
            assert top and top[0].tid == 0, name
