"""Package metadata consistency.

``pyproject.toml`` and ``repro.__version__`` drifted once (1.1.0 vs 1.4.0);
these tests pin them together so a release bump touches both or fails CI.
"""

import pathlib
import re

import pytest

import repro

try:
    import tomllib
except ImportError:  # Python < 3.11
    tomllib = None

_PYPROJECT = pathlib.Path(__file__).resolve().parent.parent / "pyproject.toml"


def _pyproject_version() -> str:
    text = _PYPROJECT.read_text(encoding="utf-8")
    if tomllib is not None:
        return tomllib.loads(text)["project"]["version"]
    match = re.search(r'^version = "([^"]+)"$', text, flags=re.MULTILINE)
    assert match is not None, "version field not found in pyproject.toml"
    return match.group(1)


def test_pyproject_version_matches_package():
    assert _pyproject_version() == repro.__version__


def test_installed_metadata_matches_package():
    """When the package is actually installed (not just on PYTHONPATH), the
    distribution metadata must agree with ``repro.__version__`` too."""
    from importlib import metadata

    try:
        installed = metadata.version("repro-approx-selection")
    except metadata.PackageNotFoundError:
        pytest.skip("package not installed as a distribution")
    assert installed == repro.__version__


def test_fast_extra_declares_numpy():
    text = _PYPROJECT.read_text(encoding="utf-8")
    if tomllib is not None:
        extras = tomllib.loads(text)["project"]["optional-dependencies"]
        assert extras["fast"] == ["numpy"]
    else:
        assert re.search(r'^fast = \["numpy"\]$', text, flags=re.MULTILINE)
