"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def base_file(tmp_path, company_strings):
    path = tmp_path / "base.tsv"
    path.write_text(
        "\n".join(f"{tid}\t{text}" for tid, text in enumerate(company_strings)),
        encoding="utf-8",
    )
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.dataset == "CU1"
        assert args.size == 1000

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--dataset", "XX9"])


class TestCommands:
    def test_predicates_lists_all(self, capsys):
        assert main(["predicates"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 13
        names = [line.split()[0] for line in lines]
        assert "bm25" in names
        # Both realizations and the alias column are listed for every predicate.
        for line in lines:
            assert "direct+declarative" in line
            assert "aliases:" in line
        bm25_line = next(line for line in lines if line.startswith("bm25"))
        assert "okapi" in bm25_line

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "--dataset", "F1", "--size", "50", "--clean", "10"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 50
        tid, text, cluster = lines[0].split("\t")
        assert tid == "0"
        assert text
        assert cluster.isdigit()

    def test_generate_to_file(self, tmp_path, capsys):
        output = tmp_path / "data.tsv"
        assert (
            main(
                [
                    "generate",
                    "--dataset",
                    "CU5",
                    "--size",
                    "40",
                    "--clean",
                    "8",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        assert output.exists()
        assert len(output.read_text().strip().splitlines()) == 40
        assert "wrote 40 records" in capsys.readouterr().out

    def test_query_top_k(self, base_file, capsys):
        assert (
            main(
                [
                    "query",
                    "--base",
                    str(base_file),
                    "--predicate",
                    "bm25",
                    "--query",
                    "Morgn Stanley Group",
                    "--top",
                    "3",
                ]
            )
            == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert "Morgan Stanley Group Inc." in lines[0]

    def test_query_with_threshold(self, base_file, capsys):
        assert (
            main(
                [
                    "query",
                    "--base",
                    str(base_file),
                    "--predicate",
                    "jaccard",
                    "--query",
                    "Beijing Hotel",
                    "--threshold",
                    "0.9",
                ]
            )
            == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2  # Beijing Hotel and Hotel Beijing

    def test_query_missing_base(self, tmp_path):
        empty = tmp_path / "empty.tsv"
        empty.write_text("", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["query", "--base", str(empty), "--query", "x"])

    def test_query_with_blocker(self, base_file, capsys):
        args = [
            "query",
            "--base",
            str(base_file),
            "--predicate",
            "jaccard",
            "--query",
            "Beijing Hotel",
            "--threshold",
            "0.9",
        ]
        assert main(args) == 0
        baseline = capsys.readouterr().out
        assert main(args + ["--blocker", "length+prefix"]) == 0
        assert capsys.readouterr().out == baseline  # exact filters change nothing

    def test_query_blocker_requires_threshold(self, base_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    "--base",
                    str(base_file),
                    "--query",
                    "Beijing Hotel",
                    "--blocker",
                    "length",
                ]
            )

    def test_dedup_with_blocker_reports_stats(self, base_file, capsys):
        assert (
            main(
                [
                    "dedup",
                    "--base",
                    str(base_file),
                    "--threshold",
                    "0.6",
                    "--blocker",
                    "length+prefix",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "blocking[length+prefix]" in output
        assert "candidate pairs" in output

    def test_dedup_with_lsh_blocker(self, base_file, capsys):
        assert (
            main(
                [
                    "dedup",
                    "--base",
                    str(base_file),
                    "--threshold",
                    "0.6",
                    "--blocker",
                    "lsh",
                    "--lsh-bands",
                    "8",
                    "--lsh-rows",
                    "2",
                ]
            )
            == 0
        )
        assert "blocking[lsh]" in capsys.readouterr().out

    def test_unknown_blocker_rejected(self, base_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "dedup",
                    "--base",
                    str(base_file),
                    "--threshold",
                    "0.6",
                    "--blocker",
                    "sorted-neighborhood",
                ]
            )

    def test_query_declarative_realization_matches_direct(self, base_file, capsys):
        args = [
            "query",
            "--base",
            str(base_file),
            "--predicate",
            "jaccard",
            "--query",
            "Beijing Hotel",
            "--threshold",
            "0.9",
        ]
        assert main(args) == 0
        direct = capsys.readouterr().out
        for backend in ("memory", "sqlite"):
            assert (
                main(args + ["--realization", "declarative", "--backend", backend]) == 0
            )
            assert capsys.readouterr().out == direct

    def test_query_explain_prints_plan_and_sql(self, base_file, capsys):
        assert (
            main(
                [
                    "query",
                    "--base",
                    str(base_file),
                    "--predicate",
                    "bm25",
                    "--query",
                    "Morgn Stanley",
                    "--realization",
                    "declarative",
                    "--backend",
                    "sqlite",
                    "--explain",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "realization: declarative" in output
        assert "backend:     sqlite" in output
        assert "emitted SQL" in output

    def test_query_rejects_unknown_realization(self, base_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    "--base",
                    str(base_file),
                    "--query",
                    "x",
                    "--realization",
                    "quantum",
                ]
            )

    def test_dedup_declarative_realization(self, base_file, capsys):
        assert (
            main(
                [
                    "dedup",
                    "--base",
                    str(base_file),
                    "--predicate",
                    "jaccard",
                    "--threshold",
                    "0.6",
                    "--realization",
                    "declarative",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "clusters" in output
        assert "Beijing" in output

    def test_evaluate_declarative_backend(self, capsys):
        assert (
            main(
                [
                    "evaluate",
                    "--dataset",
                    "F2",
                    "--size",
                    "60",
                    "--clean",
                    "15",
                    "--queries",
                    "5",
                    "--predicates",
                    "jaccard",
                    "--realization",
                    "declarative",
                    "--backend",
                    "sqlite",
                ]
            )
            == 0
        )
        assert "Jaccard" in capsys.readouterr().out

    def test_evaluate_and_save(self, tmp_path, capsys):
        report = tmp_path / "report.csv"
        assert (
            main(
                [
                    "evaluate",
                    "--dataset",
                    "F2",
                    "--size",
                    "120",
                    "--clean",
                    "30",
                    "--queries",
                    "10",
                    "--predicates",
                    "jaccard",
                    "bm25",
                    "--output",
                    str(report),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Jaccard" in output and "BM25" in output
        assert report.exists()
        assert report.read_text().startswith("predicate,")

    def test_dedup(self, base_file, capsys):
        assert (
            main(
                [
                    "dedup",
                    "--base",
                    str(base_file),
                    "--predicate",
                    "jaccard",
                    "--threshold",
                    "0.6",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "clusters" in output
        assert "Beijing" in output  # the Beijing Hotel / Hotel Beijing cluster
