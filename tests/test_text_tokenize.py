"""Unit and property tests for tokenizers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import (
    QgramTokenizer,
    TwoLevelTokenizer,
    WordTokenizer,
    normalize_string,
    pad_string,
    qgrams,
    token_counts,
    word_tokens,
)

printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=40
)


class TestNormalizeAndPad:
    def test_normalize_collapses_whitespace(self):
        assert normalize_string("  db   lab \t x ") == "DB LAB X"

    def test_normalize_without_uppercase(self):
        assert normalize_string("Db  Lab", uppercase=False) == "Db Lab"

    def test_pad_replaces_spaces(self):
        assert pad_string("db lab", 3) == "$$DB$$LAB$$"

    def test_pad_q1_has_no_padding(self):
        assert pad_string("db lab", 1) == "DBLAB"

    def test_pad_rejects_bad_q(self):
        with pytest.raises(ValueError):
            pad_string("x", 0)

    def test_pad_rejects_multichar_pad(self):
        with pytest.raises(ValueError):
            pad_string("x", 2, pad_char="$$")


class TestQgrams:
    def test_simple_bigrams(self):
        assert qgrams("ab", 2) == ["$A", "AB", "B$"]

    def test_word_order_shares_qgrams(self):
        # The paper's padding makes different word orders share most q-grams.
        left = set(qgrams("Computer Science Department", 3))
        right = set(qgrams("Department of Computer Science", 3))
        overlap = len(left & right) / len(left)
        assert overlap > 0.8

    def test_trigram_padding(self):
        grams = qgrams("ab", 3)
        assert grams[0] == "$$A"
        assert grams[-1] == "B$$"

    def test_empty_string(self):
        grams = qgrams("", 2)
        assert grams == ["$$"]

    def test_number_of_qgrams(self):
        # For a string without spaces: len + q - 1 q-grams.
        text = "abcdef"
        for q in (2, 3, 4):
            assert len(qgrams(text, q)) == len(text) + q - 1

    @given(printable, st.integers(min_value=1, max_value=4))
    def test_all_grams_have_length_q(self, text, q):
        for gram in qgrams(text, q):
            assert len(gram) == q

    @given(printable)
    def test_duplicates_preserved(self, text):
        grams = qgrams(text, 2)
        # total number of grams is deterministic in the padded length
        padded = pad_string(text, 2)
        assert len(grams) == max(len(padded) - 1, 1 if padded else 0)


class TestWordTokens:
    def test_basic_split(self):
        assert word_tokens("Morgan Stanley  Group") == ["MORGAN", "STANLEY", "GROUP"]

    def test_case_preserved_when_requested(self):
        assert word_tokens("Morgan Stanley", uppercase=False) == ["Morgan", "Stanley"]

    def test_empty(self):
        assert word_tokens("   ") == []

    def test_token_counts(self):
        counts = token_counts(["A", "B", "A"])
        assert counts["A"] == 2
        assert counts["B"] == 1


class TestTokenizerClasses:
    def test_qgram_tokenizer_equivalence(self):
        tokenizer = QgramTokenizer(q=2)
        assert tokenizer.tokenize("db lab") == qgrams("db lab", 2)

    def test_qgram_tokenizer_name(self):
        assert QgramTokenizer(q=3).name == "qgram(q=3)"

    def test_qgram_tokenizer_validation(self):
        with pytest.raises(ValueError):
            QgramTokenizer(q=0)
        with pytest.raises(ValueError):
            QgramTokenizer(q=2, pad_char="##")

    def test_word_tokenizer(self):
        assert WordTokenizer().tokenize("a b") == ["A", "B"]
        assert WordTokenizer().name == "word"

    def test_tokenize_many(self):
        tokenizer = WordTokenizer()
        assert tokenizer.tokenize_many(["a b", "c"]) == [["A", "B"], ["C"]]

    def test_two_level_tokenizer(self):
        tokenizer = TwoLevelTokenizer(q=2)
        assert tokenizer.tokenize("db lab") == ["DB", "LAB"]
        assert tokenizer.word_qgrams("DB") == ["$D", "DB", "B$"]
        nested = tokenizer.tokenize_nested("db lab")
        assert nested[0][0] == "DB"
        assert nested[1][1] == ["$L", "LA", "AB", "B$"]

    def test_two_level_name(self):
        assert "two-level" in TwoLevelTokenizer(q=3).name

    def test_tokenizers_are_value_objects(self):
        assert QgramTokenizer(q=2) == QgramTokenizer(q=2)
        assert QgramTokenizer(q=2) != QgramTokenizer(q=3)
