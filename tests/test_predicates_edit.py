"""Unit tests for the edit-based predicate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicates import EditDistance
from repro.text.strings import edit_similarity
from repro.text.tokenize import normalize_string


class TestEditDistance:
    def test_identity_scores_one(self, company_strings):
        predicate = EditDistance().fit(company_strings)
        for tid in (0, 4, 7):
            assert predicate.score(company_strings[tid], tid) == pytest.approx(1.0)

    def test_score_matches_direct_formula(self, company_strings):
        predicate = EditDistance().fit(company_strings)
        query = "Morgan Stanley Grp Inc."
        expected = edit_similarity(
            normalize_string(query), normalize_string(company_strings[0])
        )
        assert predicate.score(query, 0) == pytest.approx(expected)

    def test_token_swap_weakness(self, company_strings):
        """Edit distance mis-ranks token swaps (paper section 5.4)."""
        predicate = EditDistance().fit(company_strings)
        scores = dict(predicate.rank("Beijing Hotel"))
        # Beijing Labs is judged closer than Hotel Beijing by pure edit distance.
        assert scores[6] > scores[7]

    def test_rank_restricted_to_qgram_candidates(self, company_strings):
        predicate = EditDistance().fit(company_strings)
        ranked = predicate.rank("zzzzqqqq")
        assert ranked == []

    def test_select_threshold_validation(self, company_strings):
        predicate = EditDistance().fit(company_strings)
        with pytest.raises(ValueError):
            predicate.select("x", threshold=1.5)

    def test_select_agrees_with_rank_filtering(self, company_strings):
        """The filtered selection must return exactly the tuples the unfiltered
        ranking would keep above the threshold (no false negatives)."""
        predicate = EditDistance().fit(company_strings)
        for query in ("Morgan Stanley Group Inc.", "AT&T Inc", "Beijing Hotle"):
            for threshold in (0.5, 0.7, 0.9):
                expected = {
                    scored.tid: scored.score
                    for scored in predicate.rank(query)
                    if scored.score >= threshold
                }
                actual = {scored.tid: scored.score for scored in predicate.select(query, threshold)}
                assert actual.keys() == expected.keys()
                for tid, score in actual.items():
                    assert score == pytest.approx(expected[tid])

    @given(
        st.lists(
            st.text(alphabet=st.characters(min_codepoint=65, max_codepoint=90), min_size=1, max_size=10),
            min_size=2,
            max_size=6,
        ),
        st.floats(min_value=0.3, max_value=0.95),
    )
    @settings(max_examples=25, deadline=None)
    def test_select_never_loses_candidates(self, strings, threshold):
        predicate = EditDistance().fit(strings)
        query = strings[0]
        expected_tids = {
            scored.tid for scored in predicate.rank(query) if scored.score >= threshold
        }
        actual_tids = {scored.tid for scored in predicate.select(query, threshold)}
        assert expected_tids == actual_tids

    def test_scores_bounded(self, company_strings):
        predicate = EditDistance().fit(company_strings)
        for scored in predicate.rank("Granite Construction Inc"):
            assert 0.0 <= scored.score <= 1.0
