"""Tests for repro.analysis -- the invariant-aware static analysis suite.

Covers: a good/bad fixture pair per rule (tricky scopes included), the
suppression grammar (reason= is mandatory), baseline add/shrink semantics,
the CLI exit-code contract, the minimal-TOML fallback parser, a self-check
that the shipped tree is clean, and pinned regression tests for the genuine
violations the rules surfaced in src/ (sorted-order float sums in SoftTFIDF
and language modeling, out-of-lock cache reads in the engine and metrics
registry).
"""

from __future__ import annotations

import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    check_paths,
    check_source,
    load_baseline,
    load_config,
    parse_minimal_toml,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.cli import main

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "analysis"

#: FileContext paths placing each rule's fixtures inside the rule's default
#: path scope (the fixture *files* live under tests/, outside every scope).
SCOPED_PATHS = {
    "RPL001": "src/repro/core/fixture.py",
    "RPL002": "src/repro/fixture.py",
    "RPL003": "src/repro/shard/fixture.py",
    "RPL004": "src/repro/fixture.py",
    "RPL005": "src/repro/serve/fixture.py",
}


def run_fixture(rule: str, kind: str):
    source = (FIXTURES / f"{rule.lower()}_{kind}.py").read_text(encoding="utf-8")
    return check_source(source, SCOPED_PATHS[rule], select=[rule])


class TestRegistry:
    def test_all_five_rules_registered(self):
        assert {"RPL001", "RPL002", "RPL003", "RPL004", "RPL005"} <= set(RULES)

    def test_every_rule_states_its_contract(self):
        for rule in RULES.values():
            assert rule.contract, rule.code


class TestFixturePairs:
    """Each rule must fire on its bad fixture and stay quiet on the good one."""

    @pytest.mark.parametrize("rule", sorted(SCOPED_PATHS))
    def test_bad_fixture_fails(self, rule):
        findings = run_fixture(rule, "bad")
        assert findings, f"{rule} missed its bad fixture"
        assert all(f.rule == rule for f in findings)

    @pytest.mark.parametrize("rule", sorted(SCOPED_PATHS))
    def test_good_fixture_passes(self, rule):
        findings = run_fixture(rule, "good")
        assert not findings, "\n".join(f.render() for f in findings)

    @pytest.mark.parametrize("rule", sorted(SCOPED_PATHS))
    def test_findings_are_location_precise(self, rule):
        for finding in run_fixture(rule, "bad"):
            rendered = finding.render()
            path, line, col, rest = rendered.split(":", 3)
            assert path == SCOPED_PATHS[rule]
            assert int(line) > 0 and int(col) > 0
            assert rest.strip().startswith(rule)


class TestRPL001Scopes:
    def test_bad_fixture_hits_loop_and_sum(self):
        findings = run_fixture("RPL001", "bad")
        assert len(findings) == 2
        assert "total" in findings[0].message
        assert "sum()" in findings[1].message

    def test_out_of_scope_path_is_ignored(self):
        source = (FIXTURES / "rpl001_bad.py").read_text(encoding="utf-8")
        findings = check_source(source, "src/repro/text/fixture.py", select=["RPL001"])
        assert not findings

    def test_sorted_alias_suppresses(self):
        source = (
            "def f(words):\n"
            "    ordered = sorted(words)\n"
            "    total = 0.0\n"
            "    for w in ordered:\n"
            "        total += len(w) / 2.0\n"
            "    return total\n"
        )
        assert not check_source(source, SCOPED_PATHS["RPL001"], select=["RPL001"])

    def test_unordered_alias_is_caught(self):
        source = (
            "def f(words):\n"
            "    bag = set(words)\n"
            "    total = 0.0\n"
            "    for w in bag:\n"
            "        total += len(w) / 2.0\n"
            "    return total\n"
        )
        findings = check_source(source, SCOPED_PATHS["RPL001"], select=["RPL001"])
        assert len(findings) == 1


class TestRPL002Scopes:
    def test_allow_list_exempts_clock_module(self):
        source = "import time\nperf_clock = time.perf_counter\n"
        assert not check_source(source, "src/repro/obs/clock.py", select=["RPL002"])
        assert check_source(source, "src/repro/obs/other.py", select=["RPL002"])

    def test_docstring_mentions_do_not_fire(self):
        findings = run_fixture("RPL002", "good")
        assert not findings

    def test_alias_and_from_import_fire(self):
        findings = run_fixture("RPL002", "bad")
        messages = "\n".join(f.message for f in findings)
        assert "_clock.monotonic" in messages
        assert "perf_counter" in messages


class TestRPL004Scopes:
    def test_requires_lock_marker_spans_signature(self):
        source = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = object()\n"
            "        self._data = {}  # guarded-by: _lock\n"
            "\n"
            "    def helper(\n"
            "        self, key,\n"
            "    ):  # requires-lock: _lock\n"
            "        return self._data[key]\n"
        )
        assert not check_source(source, "src/repro/x.py", select=["RPL004"])

    def test_unmarked_helper_fires(self):
        source = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = object()\n"
            "        self._data = {}  # guarded-by: _lock\n"
            "\n"
            "    def helper(self, key):\n"
            "        return self._data[key]\n"
        )
        findings = check_source(source, "src/repro/x.py", select=["RPL004"])
        assert len(findings) == 1
        assert "_data" in findings[0].message


class TestSuppressions:
    def test_inline_disable_with_reason(self):
        source = (
            "def f(weights):\n"
            "    total = 0.0\n"
            "    for w in weights.values():\n"
            "        total += w * 1.0  # repro-analysis: disable=RPL001 reason=operands are ints\n"
            "    return total\n"
        )
        assert not check_source(source, SCOPED_PATHS["RPL001"], select=["RPL001"])

    def test_disable_without_reason_is_rpl000(self):
        source = (
            "def f(weights):\n"
            "    total = 0.0\n"
            "    for w in weights.values():\n"
            "        total += w * 1.0  # repro-analysis: disable=RPL001\n"
            "    return total\n"
        )
        findings = check_source(source, SCOPED_PATHS["RPL001"], select=["RPL001"])
        codes = sorted(f.rule for f in findings)
        # The reason-less disable does NOT suppress, and is itself flagged.
        assert codes == ["RPL000", "RPL001"]

    def test_standalone_comment_suppresses_next_line(self):
        source = (
            "def f(weights):\n"
            "    total = 0.0\n"
            "    for w in weights.values():\n"
            "        # repro-analysis: disable=RPL001 reason=ints only\n"
            "        total += w * 1.0\n"
            "    return total\n"
        )
        assert not check_source(source, SCOPED_PATHS["RPL001"], select=["RPL001"])

    def test_syntax_error_reports_rpl000(self):
        findings = check_source("def broken(:\n", "src/repro/x.py")
        assert len(findings) == 1
        assert findings[0].rule == "RPL000"
        assert "parse" in findings[0].message


class TestBaseline:
    def _findings(self):
        source = (FIXTURES / "rpl001_bad.py").read_text(encoding="utf-8")
        return check_source(source, SCOPED_PATHS["RPL001"], select=["RPL001"])

    def test_roundtrip(self, tmp_path):
        findings = self._findings()
        baseline_path = tmp_path / "baseline"
        assert write_baseline(baseline_path, findings) == len(findings)
        baseline = load_baseline(baseline_path)
        new, grandfathered, stale = split_by_baseline(findings, baseline)
        assert not new and not stale
        assert len(grandfathered) == len(findings)

    def test_new_findings_are_not_absorbed(self, tmp_path):
        findings = self._findings()
        baseline_path = tmp_path / "baseline"
        write_baseline(baseline_path, findings[:1])
        new, grandfathered, stale = split_by_baseline(
            findings, load_baseline(baseline_path)
        )
        assert len(new) == len(findings) - 1
        assert len(grandfathered) == 1
        assert not stale

    def test_fixed_findings_go_stale(self, tmp_path):
        findings = self._findings()
        baseline_path = tmp_path / "baseline"
        write_baseline(baseline_path, findings)
        new, grandfathered, stale = split_by_baseline(
            findings[:1], load_baseline(baseline_path)
        )
        assert not new
        assert len(stale) == len(findings) - 1

    def test_fingerprint_survives_line_drift(self):
        source = (FIXTURES / "rpl001_bad.py").read_text(encoding="utf-8")
        drifted = "# a new leading comment\n\n" + source
        original = check_source(source, SCOPED_PATHS["RPL001"], select=["RPL001"])
        moved = check_source(drifted, SCOPED_PATHS["RPL001"], select=["RPL001"])
        assert [f.fingerprint() for f in original] == [
            f.fingerprint() for f in moved
        ]
        assert [f.line for f in original] != [f.line for f in moved]


def _make_project(tmp_path: Path, bad: bool = True) -> Path:
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-analysis]\n"
        'paths = ["src"]\n'
        'baseline = ".baseline"\n'
        "\n"
        "[tool.repro-analysis.rpl001]\n"
        'paths = ["src"]\n',
        encoding="utf-8",
    )
    package = tmp_path / "src"
    package.mkdir(exist_ok=True)
    iterable = "weights.values()" if bad else "sorted(weights.values())"
    body = (
        "def f(weights):\n"
        "    total = 0.0\n"
        f"    for w in {iterable}:\n"
        "        total += w * 1.0\n"
        "    return total\n"
    )
    (package / "mod.py").write_text(body, encoding="utf-8")
    return tmp_path


class TestCLI:
    def test_violations_exit_1(self, tmp_path, capsys):
        root = _make_project(tmp_path)
        assert main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "RPL001" in out and "src/mod.py:4" in out

    def test_write_then_clean(self, tmp_path, capsys):
        root = _make_project(tmp_path)
        assert main(["--root", str(root), "--write-baseline"]) == 0
        assert main(["--root", str(root)]) == 0

    def test_stale_entry_fails_until_updated(self, tmp_path, capsys):
        root = _make_project(tmp_path)
        assert main(["--root", str(root), "--write-baseline"]) == 0
        # Fix the violation: its baseline entry goes stale, which fails...
        _make_project(tmp_path, bad=False)
        assert main(["--root", str(root)]) == 1
        assert "stale" in capsys.readouterr().out
        # ...until --update-baseline shrinks the file.
        assert main(["--root", str(root), "--update-baseline"]) == 0
        assert main(["--root", str(root)]) == 0
        assert load_baseline(root / ".baseline") == {}

    def test_update_baseline_refuses_new_findings(self, tmp_path, capsys):
        root = _make_project(tmp_path)
        assert main(["--root", str(root), "--update-baseline"]) == 1

    def test_select_and_list_rules(self, tmp_path, capsys):
        root = _make_project(tmp_path)
        assert main(["--root", str(root), "--select", "RPL002"]) == 0
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in sorted(SCOPED_PATHS):
            assert code in out

    def test_usage_errors_exit_2(self, tmp_path, capsys):
        root = _make_project(tmp_path)
        assert main(["--root", str(root), "--select", "RPL999"]) == 2
        assert main(["--root", str(root), str(root / "missing")]) == 2


class TestMinimalToml:
    def test_matches_tomllib_on_repo_pyproject(self):
        tomllib = pytest.importorskip("tomllib")
        text = (REPO / "pyproject.toml").read_text(encoding="utf-8")
        expected = tomllib.loads(text)["tool"]["repro-analysis"]
        parsed = parse_minimal_toml(text)["tool"]["repro-analysis"]
        assert parsed == expected

    def test_subset_features(self):
        parsed = parse_minimal_toml(
            "[tool.x]\n"
            'name = "value"  # trailing comment\n'
            "count = 3\n"
            "ratio = 0.5\n"
            "flag = true\n"
            'items = ["a", "b,c"]  # comma inside quotes\n'
        )
        table = parsed["tool"]["x"]
        assert table == {
            "name": "value",
            "count": 3,
            "ratio": 0.5,
            "flag": True,
            "items": ["a", "b,c"],
        }


class TestShippedTreeClean:
    def test_repo_config_resolves(self):
        config = load_config(REPO)
        assert config.paths == ["src", "benchmarks", "examples"]
        assert config.baseline == ".repro-analysis-baseline"

    def test_checker_is_clean_in_process(self):
        config = load_config(REPO)
        findings = check_paths(
            [REPO / p for p in config.paths], config=config.rules, root=REPO
        )
        baseline = load_baseline(REPO / config.baseline)
        new, _, stale = split_by_baseline(findings, baseline)
        assert not new, "\n".join(f.render() for f in new)
        assert not stale

    def test_module_entry_point_exits_0(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src", "benchmarks", "examples"],
            cwd=REPO,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr


class _CountingLock:
    """Lock proxy counting acquisitions -- probes that code takes the lock."""

    def __init__(self, inner):
        self._inner = inner
        self.acquisitions = 0

    def __enter__(self):
        self.acquisitions += 1
        return self._inner.__enter__()

    def __exit__(self, *exc):
        return self._inner.__exit__(*exc)

    def acquire(self, *args, **kwargs):
        self.acquisitions += 1
        return self._inner.acquire(*args, **kwargs)

    def release(self):
        return self._inner.release()


class TestSurfacedFixes:
    """Pinned regressions for the genuine findings the rules surfaced."""

    def test_soft_tfidf_score_is_word_order_invariant(self):
        # RPL001 fix in SoftTFIDF._soft_score: the per-word float sum now
        # runs over sorted(query_weights.items()), so permuting the query's
        # words (different dict insertion order) is bit-identical.
        from repro.core.predicates import SoftTFIDF

        corpus = ["bank of america", "bank of american fork", "america first bank"]
        predicate = SoftTFIDF().fit(corpus)
        baseline = predicate.rank("bank of america")
        permuted = predicate.rank("america of bank")
        assert [(m.tid, m.score) for m in baseline] == [
            (m.tid, m.score) for m in permuted
        ]

    def test_language_model_fit_is_token_order_invariant(self):
        # RPL001 fix in LanguageModeling.weight_phase: log_complement_sum
        # now accumulates over sorted term frequencies, so the order tokens
        # were first seen in (dict insertion order) cannot change scores.
        from repro.core.predicates import LanguageModeling
        from repro.text.tokenize import WordTokenizer

        corpus = ["alpha beta gamma delta", "delta beta", "gamma alpha alpha"]
        forward = LanguageModeling(tokenizer=WordTokenizer()).fit(corpus)
        reversed_lists = [
            list(reversed(WordTokenizer().tokenize(row))) for row in corpus
        ]
        backward = LanguageModeling(tokenizer=WordTokenizer()).fit(
            corpus, token_lists=reversed_lists
        )
        assert forward._sum_complement == backward._sum_complement
        query = "alpha delta"
        assert [(m.tid, m.score) for m in forward.rank(query)] == [
            (m.tid, m.score) for m in backward.rank(query)
        ]

    def test_engine_cache_size_takes_the_lock(self):
        # RPL004 fix: cache_size reads _states under the engine lock.
        from repro.engine import SimilarityEngine
        from repro.obs.metrics import MetricsRegistry

        engine = SimilarityEngine(metrics=MetricsRegistry())
        probe = _CountingLock(engine._lock)
        engine._lock = probe
        assert engine.cache_size == 0
        assert probe.acquisitions == 1

    def test_metrics_snapshot_takes_the_lock(self):
        # RPL004 fix: to_dict iterates the metric dicts under the lock
        # (iteration during a concurrent insert raises RuntimeError).
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.inc("queries_total")
        probe = _CountingLock(registry._lock)
        registry._lock = probe
        snapshot = registry.to_dict()
        assert snapshot["counters"] == {"queries_total": 1}
        assert probe.acquisitions == 1

    def test_metrics_snapshot_consistent_under_writers(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                registry.inc(f"c{i % 97}")
                i += 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                registry.to_dict()  # raced RuntimeError before the fix
        finally:
            stop.set()
            for thread in threads:
                thread.join()

    def test_breaker_repr_takes_the_lock(self):
        from repro.resilience.breaker import CircuitBreaker

        breaker = CircuitBreaker()
        probe = _CountingLock(breaker._lock)
        breaker._lock = probe
        assert "closed" in repr(breaker)
        assert probe.acquisitions == 1
