"""Engine parity suite: every predicate, every realization, every backend.

The acceptance bar for the unified engine: for each registered predicate the
*same* :class:`repro.engine.query.Query` call must return identical rankings
whether it executes the direct in-memory realization or the declarative SQL
realization on either backend, on a small UIS-style generated dataset.

Rankings are compared as tid sequences up to permutations within
floating-point score ties (both realizations sort by ``(-score, tid)``, but
scores that differ only in the last few ulps may order two tuples
differently across realizations).
"""

from __future__ import annotations

import pytest

from repro.datagen import make_dataset
from repro.engine import SimilarityEngine, available_predicates

#: All realization/backend combinations the engine must agree across.
CONFIGURATIONS = [
    ("direct", "memory"),
    ("declarative", "memory"),
    ("declarative", "sqlite"),
]

#: Predicates whose scores are identical across realizations; the remaining
#: combination predicates (soft_tfidf, ges_jaccard, ges_apx) keep/drop
#: query-constant factors in their SQL filter step, so only their rankings
#: are compared.
SCORE_EXACT = {
    "intersect",
    "jaccard",
    "weighted_match",
    "weighted_jaccard",
    "cosine",
    "bm25",
    "hmm",
    "lm",
    "edit_distance",
    "ges",
}

#: Extra constructor arguments needed on the small dataset (the GES filters'
#: default 0.8 threshold empties candidate sets on heavily-erroneous data).
#: ges_apx must stay above the filter's q-gram adjustment constant
#: ``1 - 1/q = 0.5``: below it the filter degenerates to "pass everything",
#: where the direct realization admits q-gram-sharing candidates with zero
#: min-hash collisions that the declarative min-hash join can never produce.
#: It must also avoid the filter-score lattice (multiples of 0.025 with five
#: hashes and equal word weights), where float summation order decides which
#: side of the threshold a candidate falls on.
PREDICATE_KWARGS = {
    "ges_jaccard": {"threshold": 0.3},
    "ges_apx": {"threshold": 0.53},
}


@pytest.fixture(scope="module")
def uis_dataset():
    """A small UIS-style dataset (kept small: the in-memory SQL engine is a
    nested-loop engine and the suite runs 13 predicates x 3 configurations)."""
    return make_dataset("CU1", size=40, num_clean=10, seed=7)


@pytest.fixture(scope="module")
def parity_queries(uis_dataset):
    tids = uis_dataset.sample_query_tids(4, seed=3)
    return [uis_dataset.records[tid].text for tid in tids]


@pytest.fixture(scope="module")
def engine():
    return SimilarityEngine()


def _ranking_groups(matches, tolerance=1e-8):
    """Collapse a ranking into score-tie groups of tids (order-insensitive
    within a group, ordered across groups)."""
    groups = []
    current = []
    last_score = None
    for match in matches:
        if last_score is not None and abs(match.score - last_score) > tolerance:
            groups.append(frozenset(current))
            current = []
        current.append(match.tid)
        last_score = match.score
    if current:
        groups.append(frozenset(current))
    return groups


def assert_same_ranking(reference, other, context):
    assert _ranking_groups(reference) == _ranking_groups(other), context


@pytest.mark.parametrize("name", sorted(available_predicates()))
def test_identical_rankings_across_realizations_and_backends(
    name, engine, uis_dataset, parity_queries
):
    kwargs = PREDICATE_KWARGS.get(name, {})
    base = engine.from_strings(uis_dataset.strings)
    queries = {
        (realization, backend): base.predicate(name, **kwargs)
        .realization(realization)
        .backend(backend)
        for realization, backend in CONFIGURATIONS
    }
    for text in parity_queries:
        reference = queries[("direct", "memory")].rank(text)
        for (realization, backend), query in queries.items():
            ranking = query.rank(text)
            context = (name, realization, backend, text)
            assert_same_ranking(reference, ranking, context)
            if name in SCORE_EXACT:
                assert len(ranking) == len(reference), context
                scores = {match.tid: match.score for match in ranking}
                for match in reference:
                    assert scores[match.tid] == pytest.approx(
                        match.score, rel=1e-6, abs=1e-9
                    ), context


@pytest.mark.parametrize("name", sorted(available_predicates()))
@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_batched_equals_sequential_for_every_predicate(
    name, backend, engine, uis_dataset, parity_queries
):
    """The batched SQL path (one statement per batch) must agree with the
    sequential per-query path, per predicate and per backend: same tids in
    the same tie-group order, scores equal to float noise."""
    kwargs = PREDICATE_KWARGS.get(name, {})
    query = (
        engine.from_strings(uis_dataset.strings)
        .predicate(name, **kwargs)
        .realization("declarative")
        .backend(backend)
    )
    batched = query.run_many(parity_queries, op="rank")
    for text, batch_ranking in zip(parity_queries, batched):
        sequential = query.rank(text)
        context = (name, backend, text)
        assert_same_ranking(sequential, batch_ranking, context)
        assert len(batch_ranking) == len(sequential), context
        scores = {match.tid: match.score for match in batch_ranking}
        for match in sequential:
            assert scores[match.tid] == pytest.approx(
                match.score, rel=1e-9, abs=1e-12
            ), context


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_batched_top_k_and_select_agree(backend, engine, uis_dataset, parity_queries):
    """run_many's op variants equal their single-query counterparts."""
    query = (
        engine.from_strings(uis_dataset.strings)
        .predicate("jaccard")
        .realization("declarative")
        .backend(backend)
    )
    top = query.run_many(parity_queries, op="top_k", k=3)
    sel = query.run_many(parity_queries, op="select", threshold=0.4)
    for text, top_batch, sel_batch in zip(parity_queries, top, sel):
        assert [m.tid for m in top_batch] == [m.tid for m in query.top_k(text, 3)]
        assert [m.tid for m in sel_batch] == [m.tid for m in query.select(text, 0.4)]


def test_top_k_and_select_agree_across_realizations(engine, uis_dataset):
    """The same Query call agrees for the other terminal operations too."""
    text = uis_dataset.records[0].text
    base = engine.from_strings(uis_dataset.strings)
    direct = base.predicate("jaccard")
    for realization, backend in CONFIGURATIONS[1:]:
        declarative = base.predicate("jaccard").realization(realization).backend(backend)
        assert [m.tid for m in declarative.top_k(text, 5)] == [
            m.tid for m in direct.top_k(text, 5)
        ]
        assert [(m.tid, m.string) for m in declarative.select(text, 0.4)] == [
            (m.tid, m.string) for m in direct.select(text, 0.4)
        ]


def test_exact_blocker_match_sets_identical_through_engine(engine, uis_dataset):
    """Miniature of benchmarks/bench_blocking.py run through the engine: the
    exact filters must leave the self-join match set byte-identical."""
    base = engine.from_strings(uis_dataset.strings)
    baseline_query = base.predicate("jaccard")
    baseline = baseline_query.self_join(0.6)
    baseline_examined = baseline_query.last_self_join_stats.pairs_examined
    for spec in ("length", "prefix", "length+prefix"):
        blocked_query = base.predicate("jaccard").blocker(spec)
        blocked = blocked_query.self_join(0.6)
        assert blocked == baseline, spec
        assert (
            blocked_query.last_self_join_stats.pairs_examined <= baseline_examined
        ), spec
