"""Concurrency regressions for the engine, plus the fit token-list seam.

The serving layer runs engine calls on worker threads, so the engine's
fitted-state / instance / backend caches must behave under concurrent
access: one fit per plan no matter how many threads race it, and results
identical to single-threaded execution.  The second half covers the
``Predicate.fit(token_lists=...)`` seam: sharded fits tokenize the relation
exactly once, and parallel (process-pool) shard fitting stays bit-identical
to the serial fit.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine import SimilarityEngine
from repro.engine import registry
from repro.obs.metrics import MetricsRegistry
from repro.shard.predicate import ShardedPredicate


class TestEngineThreadSafety:
    def test_racing_threads_fit_once_and_agree(self, company_strings):
        engine = SimilarityEngine(metrics=MetricsRegistry())
        num_threads = 8
        barrier = threading.Barrier(num_threads)
        results: list = [None] * num_threads
        errors: list = []

        def worker(index: int) -> None:
            try:
                barrier.wait(timeout=30)
                query = engine.from_strings(company_strings).predicate("bm25")
                results[index] = query.top_k("Morgn Stanley", 5)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        # The racing threads shared ONE fit (the cache did not double-build).
        assert engine.metrics.value("fits_total") == 1
        assert engine.cache_size == 1
        for result in results[1:]:
            assert result == results[0]

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_concurrent_declarative_queries_on_shared_backend(
        self, backend, company_strings
    ):
        """Interleaved declarative executions must not clobber each other's
        staged query tables on the engine-shared SQL backend."""
        engine = SimilarityEngine(metrics=MetricsRegistry())
        plans = [("bm25", "Morgn Stanley"), ("jaccard", "AT&T"), ("cosine", "Beijing")]
        num_threads = 6
        results: list = [None] * num_threads
        errors: list = []
        barrier = threading.Barrier(num_threads)

        def worker(index: int) -> None:
            predicate, text = plans[index % len(plans)]
            try:
                barrier.wait(timeout=30)
                query = (
                    engine.from_strings(company_strings)
                    .predicate(predicate)
                    .realization("declarative")
                    .backend(backend)
                )
                results[index] = query.top_k(text, 4)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []
        # Compare against a fresh single-threaded engine, plan by plan.
        serial_engine = SimilarityEngine()
        for index, (predicate, text) in enumerate(
            plans[i % len(plans)] for i in range(num_threads)
        ):
            serial = (
                serial_engine.from_strings(company_strings)
                .predicate(predicate)
                .realization("declarative")
                .backend(backend)
                .top_k(text, 4)
            )
            assert results[index] == serial, (predicate, text)
        engine.clear_cache()
        serial_engine.clear_cache()

    def test_concurrent_corpus_interning(self, company_strings):
        engine = SimilarityEngine()
        queries: list = [None] * 8
        barrier = threading.Barrier(8)

        def worker(index: int) -> None:
            barrier.wait(timeout=30)
            queries[index] = engine.from_strings(company_strings)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        # All racing registrations interned to ONE corpus object.
        keys = {query._corpus.key for query in queries}
        assert len(keys) == 1


class _CountingTokenizer:
    """Wraps a tokenizer, counting tokenize() calls (shared across shards)."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def tokenize(self, text):
        self.calls += 1
        return self.inner.tokenize(text)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestFitTokenSeam:
    def test_fit_accepts_pretokenized_lists(self, company_strings):
        baseline = registry.make("bm25", realization="direct").fit(company_strings)
        pretokenized = registry.make("bm25", realization="direct")
        token_lists = [
            pretokenized.tokenizer.tokenize(text) for text in company_strings
        ]
        pretokenized.fit(company_strings, token_lists=token_lists)
        assert pretokenized.top_k("Morgn Stanley", 5) == baseline.top_k(
            "Morgn Stanley", 5
        )

    def test_seam_is_per_fit_not_fitted_state(self, company_strings):
        predicate = registry.make("bm25", realization="direct")
        token_lists = [
            predicate.tokenizer.tokenize(text) for text in company_strings
        ]
        predicate.fit(company_strings, token_lists=token_lists)
        assert predicate._fit_token_lists is None  # cleared after the fit
        # A refit without the seam re-tokenizes the *new* strings.
        predicate.fit(company_strings[:4])
        assert predicate.top_k("AT&T", 2) == registry.make(
            "bm25", realization="direct"
        ).fit(company_strings[:4]).top_k("AT&T", 2)

    def test_sharded_fit_tokenizes_each_string_once(self, company_strings):
        counter_holder: list = []

        def factory():
            predicate = registry.make("bm25", realization="direct")
            counting = _CountingTokenizer(predicate.tokenizer)
            predicate.tokenizer = counting
            counter_holder.append(counting)
            return predicate

        sharded = ShardedPredicate(factory=factory, num_shards=3, parallel_fit=False)
        sharded.fit(company_strings)
        # One global tokenization pass; the shard-local fits reuse its lists
        # through the token_lists seam instead of re-tokenizing.
        fit_calls = sum(counting.calls for counting in counter_holder)
        assert fit_calls == len(company_strings)
        baseline = registry.make("bm25", realization="direct").fit(company_strings)
        assert sharded.top_k("Morgn Stanley", 5) == baseline.top_k("Morgn Stanley", 5)
        sharded.close()

    @pytest.mark.parametrize("predicate_name", ["bm25", "jaccard"])
    def test_parallel_process_fit_is_bit_identical(
        self, predicate_name, company_strings
    ):
        sharded = ShardedPredicate(
            factory=lambda: registry.make(predicate_name, realization="direct"),
            num_shards=3,
            parallel_fit=True,  # force the process-pool fit even on one core
        )
        sharded.fit(company_strings)
        baseline = registry.make(predicate_name, realization="direct").fit(
            company_strings
        )
        for text in ("Morgn Stanley", "AT&T Incorporated", "Beijing Hotel"):
            assert sharded.top_k(text, 5) == baseline.top_k(text, 5)
            assert sharded.rank(text) == baseline.rank(text)
        sharded.close()

    def test_parallel_fit_falls_back_on_unpicklable_predicates(
        self, company_strings
    ):
        def factory():
            predicate = registry.make("bm25", realization="direct")
            predicate._unpicklable = lambda: None  # lambdas do not pickle
            return predicate

        sharded = ShardedPredicate(factory=factory, num_shards=2, parallel_fit=True)
        sharded.fit(company_strings)  # falls back to the serial in-parent fit
        baseline = registry.make("bm25", realization="direct").fit(company_strings)
        assert sharded.top_k("Morgn Stanley", 5) == baseline.top_k("Morgn Stanley", 5)
        sharded.close()
