"""Unit tests for predicate/selector persistence."""

from __future__ import annotations

import pickle

import pytest

from repro.core import ApproximateSelector
from repro.core.persistence import (
    SnapshotError,
    load_predicate,
    load_selector,
    save_predicate,
    save_selector,
)
from repro.core.predicates import BM25, available_predicates, make_predicate


class TestPredicateSnapshots:
    def test_round_trip_preserves_rankings(self, tmp_path, company_strings):
        predicate = BM25().fit(company_strings)
        path = save_predicate(predicate, tmp_path / "bm25.bin")
        restored = load_predicate(path)
        query = "Morgn Stanley Group"
        assert [s.tid for s in restored.rank(query)] == [s.tid for s in predicate.rank(query)]

    def test_every_predicate_round_trips(self, tmp_path, company_strings):
        for name in available_predicates():
            predicate = make_predicate(name).fit(company_strings)
            path = save_predicate(predicate, tmp_path / f"{name}.bin")
            restored = load_predicate(path)
            original_top = predicate.rank(company_strings[0], limit=1)
            restored_top = restored.rank(company_strings[0], limit=1)
            assert [s.tid for s in restored_top] == [s.tid for s in original_top], name

    def test_unfitted_predicate_rejected(self, tmp_path):
        with pytest.raises(SnapshotError):
            save_predicate(BM25(), tmp_path / "x.bin")

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_predicate(tmp_path / "does-not-exist.bin")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "corrupt.bin"
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(SnapshotError):
            load_predicate(path)

    def test_wrong_payload_type(self, tmp_path, company_strings):
        selector = ApproximateSelector(company_strings, predicate="jaccard")
        path = save_selector(selector, tmp_path / "selector.bin")
        with pytest.raises(SnapshotError):
            load_predicate(path)

    def test_foreign_pickle_rejected(self, tmp_path):
        path = tmp_path / "foreign.bin"
        with open(path, "wb") as handle:
            pickle.dump({"not": "a snapshot"}, handle)
        with pytest.raises(SnapshotError):
            load_predicate(path)


class TestSelectorSnapshots:
    def test_round_trip(self, tmp_path, company_strings):
        selector = ApproximateSelector(company_strings, predicate="hmm")
        path = save_selector(selector, tmp_path / "nested" / "selector.bin")
        restored = load_selector(path)
        assert restored.strings == selector.strings
        query = "AT&T Incorporated"
        assert [r.tid for r in restored.top_k(query, k=3)] == [
            r.tid for r in selector.top_k(query, k=3)
        ]

    def test_wrong_kind(self, tmp_path, company_strings):
        predicate = BM25().fit(company_strings)
        path = save_predicate(predicate, tmp_path / "predicate.bin")
        with pytest.raises(SnapshotError):
            load_selector(path)
