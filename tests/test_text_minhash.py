"""Unit and property tests for min-wise independent permutations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.minhash import MinHasher, minhash_similarity
from repro.text.tokenize import qgrams

token_sets = st.sets(st.text(min_size=1, max_size=4), min_size=1, max_size=15)


class TestMinHasher:
    def test_requires_positive_hashes(self):
        with pytest.raises(ValueError):
            MinHasher(num_hashes=0)

    def test_signature_length(self):
        hasher = MinHasher(num_hashes=7)
        assert len(hasher.signature({"a", "b"})) == 7

    def test_deterministic_for_fixed_seed(self):
        first = MinHasher(num_hashes=5, seed=1).signature({"a", "b", "c"})
        second = MinHasher(num_hashes=5, seed=1).signature({"c", "b", "a"})
        assert first == second

    def test_different_seeds_differ(self):
        first = MinHasher(num_hashes=5, seed=1).signature({"a", "b", "c"})
        second = MinHasher(num_hashes=5, seed=2).signature({"a", "b", "c"})
        assert first != second

    def test_identical_sets_have_similarity_one(self):
        hasher = MinHasher(num_hashes=10)
        assert hasher.similarity({"x", "y"}, {"y", "x"}) == 1.0

    def test_disjoint_sets_have_low_similarity(self):
        hasher = MinHasher(num_hashes=32)
        similarity = hasher.similarity({"aa", "bb", "cc"}, {"dd", "ee", "ff"})
        assert similarity <= 0.25

    def test_empty_set_similarity_is_zero(self):
        hasher = MinHasher(num_hashes=5)
        assert hasher.similarity(set(), {"a"}) == 0.0
        assert hasher.similarity(set(), set()) == 0.0

    def test_duplicates_ignored(self):
        hasher = MinHasher(num_hashes=5)
        assert hasher.signature(["a", "a", "b"]) == hasher.signature(["a", "b"])

    @given(token_sets, token_sets)
    @settings(max_examples=50)
    def test_estimate_tracks_true_jaccard(self, left, right):
        """With enough hash functions the estimate is close to exact Jaccard."""
        hasher = MinHasher(num_hashes=128)
        estimate = hasher.similarity(left, right)
        true_jaccard = len(left & right) / len(left | right)
        assert abs(estimate - true_jaccard) <= 0.35

    def test_estimates_word_qgram_similarity(self):
        hasher = MinHasher(num_hashes=64)
        similar = hasher.similarity(qgrams("stanley", 2), qgrams("stanley", 2))
        dissimilar = hasher.similarity(qgrams("stanley", 2), qgrams("valley", 2))
        assert similar == 1.0
        assert dissimilar < similar


class TestMinhashSimilarity:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            minhash_similarity((1, 2), (1,))

    def test_empty_signatures(self):
        assert minhash_similarity((), ()) == 0.0

    def test_fraction_of_matches(self):
        assert minhash_similarity((1, 2, 3, 4), (1, 9, 3, 8)) == 0.5
