"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package (src layout).
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datagen import DatasetGenerator, GeneratorParameters, company_names  # noqa: E402


@pytest.fixture(scope="session")
def company_strings() -> list[str]:
    """A small, diverse set of company-name strings used across tests."""
    return [
        "Morgan Stanley Group Inc.",
        "Goldman Sachs Group",
        "AT&T Incorporated",
        "IBM Incorporated",
        "AT&T Inc.",
        "Beijing Hotel",
        "Beijing Labs",
        "Hotel Beijing",
        "Stanley Morgan Group Incorporated",
        "Silicon Valley Group, Inc.",
        "Pacific Gas and Electric Company",
        "Granite Construction Incorporated",
    ]


@pytest.fixture(scope="session")
def small_dataset():
    """A small generated dataset with ground-truth clusters (shared, read-only)."""
    clean = company_names(count=80, seed=3)
    generator = DatasetGenerator(clean)
    parameters = GeneratorParameters(
        size=400,
        num_clean=60,
        distribution="uniform",
        erroneous_fraction=0.6,
        edit_extent=0.15,
        token_swap_rate=0.2,
        abbreviation_rate=0.5,
        seed=11,
    )
    return generator.generate(parameters)


@pytest.fixture()
def memory_backend():
    from repro.backends import MemoryBackend

    return MemoryBackend()


@pytest.fixture()
def sqlite_backend():
    from repro.backends import SQLiteBackend

    backend = SQLiteBackend()
    yield backend
    backend.close()
