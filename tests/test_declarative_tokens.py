"""Unit tests for the declarative token-table helpers (Appendix A)."""

from __future__ import annotations

import pytest

from repro.backends import MemoryBackend, SQLiteBackend
from repro.declarative.tokens import (
    load_base_table,
    load_base_tokens_python,
    load_base_tokens_sql,
    load_query_tokens,
    qgram_tokenization_sql,
    sql_escape,
)
from repro.text.tokenize import QgramTokenizer, WordTokenizer, qgrams


class TestSqlEscape:
    def test_plain_string_unchanged(self):
        assert sql_escape("Morgan Stanley") == "Morgan Stanley"

    def test_single_quote_doubled(self):
        assert sql_escape("O'Reilly & Sons") == "O''Reilly & Sons"

    def test_escaped_literal_round_trips_through_sql(self):
        backend = MemoryBackend()
        literal = sql_escape("It's a 'test'")
        rows = backend.query(f"SELECT '{literal}'")
        assert rows == [("It's a 'test'",)]


class TestBaseTables:
    def test_load_base_table(self):
        backend = MemoryBackend()
        load_base_table(backend, ["a", "b"])
        assert backend.query("SELECT tid, string FROM BASE_TABLE ORDER BY tid") == [
            (0, "a"),
            (1, "b"),
        ]

    def test_load_base_table_is_idempotent(self):
        backend = MemoryBackend()
        load_base_table(backend, ["a"])
        load_base_table(backend, ["x", "y"])
        assert backend.row_count("BASE_TABLE") == 2

    def test_python_tokenization_matches_tokenizer(self):
        backend = MemoryBackend()
        strings = ["db lab", "data cleaning"]
        load_base_table(backend, strings)
        load_base_tokens_python(backend, strings, QgramTokenizer(q=2))
        rows = backend.query("SELECT tid, token FROM BASE_TOKENS")
        expected = [
            (tid, token)
            for tid, text in enumerate(strings)
            for token in qgrams(text, 2)
        ]
        assert sorted(rows) == sorted(expected)

    def test_word_tokenization_supported(self):
        backend = MemoryBackend()
        strings = ["Morgan Stanley"]
        load_base_table(backend, strings)
        load_base_tokens_python(backend, strings, WordTokenizer())
        rows = backend.query("SELECT token FROM BASE_TOKENS")
        assert sorted(row[0] for row in rows) == ["MORGAN", "STANLEY"]

    def test_query_tokens(self):
        backend = MemoryBackend()
        load_query_tokens(backend, "db lab", QgramTokenizer(q=2))
        assert backend.row_count("QUERY_TOKENS") == len(qgrams("db lab", 2))


class TestSqlTokenization:
    @pytest.mark.parametrize("q", [2, 3])
    def test_sql_generation_matches_python(self, q):
        strings = ["db lab", "Data cleaning", "a"]
        for backend in (MemoryBackend(), SQLiteBackend()):
            load_base_table(backend, strings)
            load_base_tokens_sql(backend, strings, q)
            sql_rows = sorted(backend.query("SELECT tid, token FROM BASE_TOKENS"))
            expected = sorted(
                (tid, token)
                for tid, text in enumerate(strings)
                for token in qgrams(text, q)
            )
            assert sql_rows == expected

    def test_statement_text_mentions_integers_join(self):
        statement = qgram_tokenization_sql(2, "BASE_TABLE", "BASE_TOKENS")
        assert "INTEGERS" in statement
        assert "SUBSTR" in statement
        assert "BASE_TOKENS" in statement

    def test_statement_without_tid(self):
        statement = qgram_tokenization_sql(2, "QUERY_TABLE", "QUERY_TOKENS", include_tid=False)
        assert "(token)" in statement
        assert "tid," not in statement
