"""RPL004 bad fixture: a guarded attribute read outside its lock."""

import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}  # guarded-by: _lock

    def size(self):
        return len(self._entries)

    def get(self, key):
        with self._lock:
            return self._entries.get(key)
