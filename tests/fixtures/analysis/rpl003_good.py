"""RPL003 good fixture: module-level tasks, shims, partials."""

import contextvars
from functools import partial


def task(value):
    return value + 1


class Runner:
    def __init__(self, pool):
        self.pool = pool

    def go(self, value):
        context = contextvars.copy_context()
        return [
            self.pool.submit(task, value),
            # contextvars shim: the judged callable is the one after run.
            self.pool.submit(context.run, task, value),
            self.pool.submit(partial(task, value)),
        ]
