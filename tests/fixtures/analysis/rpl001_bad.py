"""RPL001 bad fixture: float accumulation over unordered iterables."""


def total_weight(weights):
    total = 0.0
    for _token, weight in weights.items():
        total += weight * 0.5
    return total


def sum_of_set(values):
    return sum(1.0 / value for value in set(values))
