"""RPL002 good fixture: time.perf_counter appears in prose only.

The old CI grep ban tripped on docstrings that merely *mention*
time.perf_counter; the AST rule only flags actual uses.
"""

import time


def pause():
    """Sleeps; never calls time.perf_counter."""
    time.sleep(0)  # sleep does not measure time
    return "time.perf_counter"  # string mention, not a use
