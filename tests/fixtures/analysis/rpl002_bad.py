"""RPL002 bad fixture: unsanctioned clock access, including aliasing."""

import time as _clock
from time import perf_counter


def now():
    return _clock.monotonic()


def stamp():
    return perf_counter()
