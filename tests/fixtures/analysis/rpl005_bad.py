"""RPL005 bad fixture: swallowed broad exceptions in handlers."""


def handle(request, engine):
    try:
        return engine.run(request)
    except Exception:
        return None


def handle_bare(request, engine):
    try:
        return engine.run(request)
    except:
        return {"ok": False}
