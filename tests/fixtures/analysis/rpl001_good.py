"""RPL001 good fixture: canonical order, aliasing, tricky scopes."""


def total_weight(weights):
    total = 0.0
    for _token, weight in sorted(weights.items()):
        total += weight * 0.5
    return total


def aliased(words):
    # sorted() behind a local alias is still canonical order.
    ordered = sorted(words)
    total = 0.0
    for word in ordered:
        total += len(word) / 2.0
    return total


def integral(counts):
    # Integer accumulation is exact in any order: not the rule's business.
    total = 0
    for value in counts.values():
        total += value
    return total


def nested(weights):
    # The += lives in a nested def: it runs per *call*, not per iteration
    # of the unordered loop, so it must not be attributed to that loop.
    callbacks = []
    for _token, weight in weights.items():
        def scale(base=weight):
            subtotal = 0.0
            subtotal += base * 1.0
            return subtotal
        callbacks.append(scale)
    return callbacks


def comprehension(weights):
    # sum() over a list comprehension of sorted items: ordered iterable.
    return sum(weight * 0.5 for weight in sorted(weights.values()))
