"""RPL003 bad fixture: impure callables submitted to executors."""


class Runner:
    def __init__(self, pool):
        self.pool = pool

    def go(self, value):
        futures = [self.pool.submit(lambda: value + 1)]

        def helper():
            return value

        futures.append(self.pool.submit(helper))
        futures.append(self.pool.submit(self._work, value))
        return futures

    def _work(self, value):
        return value
