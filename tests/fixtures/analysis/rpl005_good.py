"""RPL005 good fixture: broad excepts that re-raise or build envelopes."""


def error_envelope(exc):
    return {"error": type(exc).__name__, "message": str(exc)}


def handle(request, engine):
    try:
        return engine.run(request)
    except Exception as exc:
        return error_envelope(exc)


def handle_reraise(request, engine, log):
    try:
        return engine.run(request)
    except BaseException:
        log.warning("request failed")
        raise


def handle_narrow(request, engine):
    # Narrow excepts are deliberate; the rule only polices broad ones.
    try:
        return engine.run(request)
    except KeyError:
        return None
