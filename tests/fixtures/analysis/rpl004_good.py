"""RPL004 good fixture: with-blocks, requires-lock helpers, module names."""

import threading

_registry_lock = threading.Lock()
_registry = {}  # guarded-by: _registry_lock


def add_entry(name, value):
    with _registry_lock:
        _registry[name] = value


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}  # guarded-by: _lock

    def get(self, key):
        with self._lock:
            return self._lookup(key)

    def _lookup(self, key):  # requires-lock: _lock
        return self._entries.get(key)
