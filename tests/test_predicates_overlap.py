"""Unit tests for the overlap predicates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicates import (
    IntersectSize,
    Jaccard,
    WeightedJaccard,
    WeightedMatch,
)
from repro.text.tokenize import QgramTokenizer, WordTokenizer

strings_strategy = st.lists(
    st.text(alphabet=st.characters(min_codepoint=65, max_codepoint=90), min_size=1, max_size=12),
    min_size=2,
    max_size=8,
)


class TestIntersectSize:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            IntersectSize().rank("query")

    def test_exact_count_with_word_tokens(self, company_strings):
        predicate = IntersectSize(tokenizer=WordTokenizer()).fit(company_strings)
        scores = dict(predicate.rank("Beijing Hotel"))
        assert scores[5] == 2.0  # Beijing Hotel
        assert scores[6] == 1.0  # Beijing Labs
        assert scores[7] == 2.0  # Hotel Beijing (order ignored)

    def test_identity_query_ranks_itself_first(self, company_strings):
        predicate = IntersectSize().fit(company_strings)
        assert predicate.rank(company_strings[0])[0].tid == 0

    def test_score_for_non_candidate_is_zero(self, company_strings):
        predicate = IntersectSize(tokenizer=WordTokenizer()).fit(company_strings)
        assert predicate.score("Beijing Hotel", 3) == 0.0

    def test_select_threshold(self, company_strings):
        predicate = IntersectSize(tokenizer=WordTokenizer()).fit(company_strings)
        results = predicate.select("Beijing Hotel", threshold=2.0)
        assert {r.tid for r in results} == {5, 7}

    def test_family(self):
        assert IntersectSize.family == "overlap"


class TestJaccard:
    def test_identical_string_scores_one(self, company_strings):
        predicate = Jaccard().fit(company_strings)
        assert predicate.score(company_strings[3], 3) == pytest.approx(1.0)

    def test_scores_in_unit_interval(self, company_strings):
        predicate = Jaccard().fit(company_strings)
        for scored in predicate.rank("Morgan Stanly Group"):
            assert 0.0 <= scored.score <= 1.0

    def test_word_level_jaccard_value(self, company_strings):
        predicate = Jaccard(tokenizer=WordTokenizer()).fit(company_strings)
        # "Beijing Hotel" vs "Beijing Labs": intersection 1, union 3.
        assert predicate.score("Beijing Hotel", 6) == pytest.approx(1 / 3)

    def test_abbreviation_weakness(self, company_strings):
        """Unweighted overlap prefers IBM Incorporated over AT&T Inc. (paper 5.4)."""
        predicate = Jaccard().fit(company_strings)
        scores = dict(predicate.rank("AT&T Incorporated"))
        assert scores[3] > scores[4]  # IBM Incorporated beats AT&T Inc.

    @given(strings_strategy)
    @settings(max_examples=30, deadline=None)
    def test_self_similarity_is_maximal(self, strings):
        predicate = Jaccard().fit(strings)
        for tid, text in enumerate(strings):
            ranked = predicate.rank(text)
            top_score = ranked[0].score
            assert predicate.score(text, tid) == pytest.approx(top_score)


class TestWeightedMatch:
    def test_weighting_scheme_validation(self):
        with pytest.raises(ValueError):
            WeightedMatch(weighting="bm25")

    def test_rare_tokens_dominate(self, company_strings):
        """Weighted overlap is robust to abbreviation errors (paper 5.4)."""
        predicate = WeightedMatch(tokenizer=WordTokenizer()).fit(company_strings)
        scores = dict(predicate.rank("AT&T Incorporated"))
        assert scores[4] > scores[3]  # AT&T Inc. now beats IBM Incorporated

    def test_rs_weights_default(self, company_strings):
        predicate = WeightedMatch().fit(company_strings)
        assert predicate.weighting == "rs"

    def test_idf_variant(self, company_strings):
        predicate = WeightedMatch(weighting="idf").fit(company_strings)
        ranked = predicate.rank("Morgan Stanley Group Inc.")
        assert ranked[0].tid == 0

    def test_score_is_sum_of_common_weights(self, company_strings):
        predicate = WeightedMatch(tokenizer=WordTokenizer()).fit(company_strings)
        weights = predicate._weights
        expected = weights["BEIJING"] + weights["HOTEL"]
        assert predicate.score("Beijing Hotel", 5) == pytest.approx(expected)


class TestWeightedJaccard:
    def test_identity_scores_one(self, company_strings):
        predicate = WeightedJaccard().fit(company_strings)
        assert predicate.score(company_strings[1], 1) == pytest.approx(1.0)

    def test_score_range(self, company_strings):
        predicate = WeightedJaccard(tokenizer=WordTokenizer()).fit(company_strings)
        for scored in predicate.rank("Morgan Stanley Group Inc."):
            # RS weights can be negative for frequent tokens, so the score is
            # not strictly bounded by 1; it must still rank the exact match first.
            assert scored.score == predicate.score("Morgan Stanley Group Inc.", scored.tid)
        assert predicate.rank("Morgan Stanley Group Inc.")[0].tid == 0

    def test_more_selective_than_weighted_match(self, company_strings):
        wj = WeightedJaccard(tokenizer=WordTokenizer()).fit(company_strings)
        scores = dict(wj.rank("Beijing Hotel"))
        # The full-overlap tuples (5 and 7) must beat the partial overlap (6).
        assert scores[5] > scores[6]
        assert scores[7] > scores[6]
