"""Unit and property tests for character-level string similarities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.strings import (
    edit_similarity,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_within,
    ngram_overlap,
)

short_text = st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=20)


class TestLevenshtein:
    def test_identical_strings(self):
        assert levenshtein("stanley", "stanley") == 0

    def test_empty_strings(self):
        assert levenshtein("", "") == 0
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_single_substitution(self):
        assert levenshtein("morgan", "morgen") == 1

    def test_single_insertion(self):
        assert levenshtein("morgan", "morgans") == 1

    def test_single_deletion(self):
        assert levenshtein("morgan", "organ") == 1

    def test_completely_different(self):
        assert levenshtein("abc", "xyz") == 3

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        distance = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))

    @given(short_text)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(short_text, short_text, short_text)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestLevenshteinWithin:
    def test_within_budget_matches_exact(self):
        assert levenshtein_within("kitten", "sitting", 3) == 3

    def test_over_budget_returns_none(self):
        assert levenshtein_within("kitten", "sitting", 2) is None

    def test_negative_budget(self):
        assert levenshtein_within("a", "b", -1) is None

    def test_equal_strings_zero_budget(self):
        assert levenshtein_within("same", "same", 0) == 0

    def test_length_difference_prunes(self):
        assert levenshtein_within("a", "abcdef", 2) is None

    def test_empty_string(self):
        assert levenshtein_within("", "ab", 2) == 2
        assert levenshtein_within("", "abc", 2) is None

    @given(short_text, short_text, st.integers(min_value=0, max_value=25))
    @settings(max_examples=100)
    def test_agrees_with_exact(self, a, b, budget):
        exact = levenshtein(a, b)
        banded = levenshtein_within(a, b, budget)
        if exact <= budget:
            assert banded == exact
        else:
            assert banded is None


class TestEditSimilarity:
    def test_identical(self):
        assert edit_similarity("stanley", "stanley") == 1.0

    def test_empty_pair(self):
        assert edit_similarity("", "") == 1.0

    def test_against_empty(self):
        assert edit_similarity("abc", "") == 0.0

    def test_normalization(self):
        # one edit over max length 7
        assert edit_similarity("stanley", "stanlee") == pytest.approx(1 - 1 / 7)

    @given(short_text, short_text)
    def test_range(self, a, b):
        assert 0.0 <= edit_similarity(a, b) <= 1.0

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert edit_similarity(a, b) == pytest.approx(edit_similarity(b, a))


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_classic_martha(self):
        assert jaro("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_classic_dixon(self):
        assert jaro("dixon", "dicksonx") == pytest.approx(0.767, abs=1e-3)

    def test_no_match(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0
        assert jaro("", "") == 1.0

    @given(short_text, short_text)
    def test_range_and_symmetry(self, a, b):
        value = jaro(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(jaro(b, a))


class TestJaroWinkler:
    def test_identical(self):
        assert jaro_winkler("stanley", "stanley") == 1.0

    def test_prefix_boost(self):
        assert jaro_winkler("martha", "marhta") > jaro("martha", "marhta")

    def test_no_boost_without_common_prefix(self):
        assert jaro_winkler("abcd", "xbcd") == pytest.approx(jaro("abcd", "xbcd"))

    def test_prefix_capped_at_four(self):
        # Only the first four characters of the shared prefix matter.
        long_prefix = jaro_winkler("abcdefgh", "abcdefgx")
        explicit = jaro("abcdefgh", "abcdefgx")
        assert long_prefix == pytest.approx(explicit + 4 * 0.1 * (1 - explicit))

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    @given(short_text, short_text)
    def test_range(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0

    @given(short_text, short_text)
    def test_at_least_jaro(self, a, b):
        assert jaro_winkler(a, b) >= jaro(a, b) - 1e-12


class TestNgramOverlap:
    def test_identical(self):
        assert ngram_overlap("stanley", "stanley") == 1.0

    def test_disjoint(self):
        assert ngram_overlap("aaaa", "bbbb") == 0.0

    def test_requires_positive_n(self):
        with pytest.raises(ValueError):
            ngram_overlap("ab", "cd", n=0)

    @given(short_text, short_text)
    def test_range(self, a, b):
        assert 0.0 <= ngram_overlap(a, b) <= 1.0
