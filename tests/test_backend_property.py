"""Property-based differential testing: memory engine vs. SQLite.

The declarative framework treats the two backends as interchangeable.  These
tests generate random token tables with Hypothesis and check that a family of
query templates (the joins / aggregations the predicate SQL is built from)
return identical result sets on both backends.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import MemoryBackend, SQLiteBackend

tokens = st.sampled_from(["AB", "BC", "CD", "DE", "EF", "$A", "A$", "ZZ"])
base_rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), tokens), min_size=0, max_size=25
)
query_rows = st.lists(tokens, min_size=0, max_size=6)

QUERY_TEMPLATES = [
    # candidate generation join + count (IntersectSize)
    "SELECT B.tid, COUNT(*) FROM base_tokens B, query_tokens Q "
    "WHERE B.token = Q.token GROUP BY B.tid",
    # distinct tokens per tuple
    "SELECT tid, COUNT(DISTINCT token) FROM base_tokens GROUP BY tid",
    # document frequency per token
    "SELECT token, COUNT(DISTINCT tid) FROM base_tokens GROUP BY token",
    # tuples containing no query token
    "SELECT DISTINCT tid FROM base_tokens "
    "WHERE token NOT IN (SELECT token FROM query_tokens)",
    # HAVING filter over aggregated counts
    "SELECT tid FROM base_tokens GROUP BY tid HAVING COUNT(*) >= 2",
    # arithmetic over aggregates
    "SELECT tid, COUNT(*) * 1.0 / 2 + 1 FROM base_tokens GROUP BY tid",
    # scalar subquery
    "SELECT (SELECT COUNT(*) FROM query_tokens)",
    # union of token sets
    "SELECT token FROM base_tokens UNION SELECT token FROM query_tokens",
]


def _normalize(rows):
    """Sort rows and round floats so both backends compare equal."""
    normalized = []
    for row in rows:
        normalized.append(
            tuple(
                round(value, 9) if isinstance(value, float) and math.isfinite(value) else value
                for value in row
            )
        )
    return sorted(normalized, key=repr)


def _load(backend, base, query):
    backend.create_table("base_tokens", ["tid INTEGER", "token TEXT"])
    backend.create_table("query_tokens", ["token TEXT"])
    backend.insert_rows("base_tokens", base)
    backend.insert_rows("query_tokens", [(token,) for token in query])


class TestBackendEquivalence:
    @given(base_rows, query_rows)
    @settings(max_examples=40, deadline=None)
    def test_query_templates_agree(self, base, query):
        memory = MemoryBackend()
        sqlite = SQLiteBackend()
        try:
            _load(memory, base, query)
            _load(sqlite, base, query)
            for sql in QUERY_TEMPLATES:
                assert _normalize(memory.query(sql)) == _normalize(sqlite.query(sql)), sql
        finally:
            sqlite.close()

    @given(base_rows)
    @settings(max_examples=25, deadline=None)
    def test_weight_computation_agrees(self, base):
        """The RS-weight SQL (the trickiest arithmetic) matches across backends."""
        memory = MemoryBackend()
        sqlite = SQLiteBackend()
        try:
            _load(memory, base, [])
            _load(sqlite, base, [])
            sql = (
                "SELECT T.token, LOG(S.size - COUNT(DISTINCT T.tid) + 0.5) "
                "- LOG(COUNT(DISTINCT T.tid) + 0.5) "
                "FROM base_tokens T, (SELECT COUNT(*) + 6 AS size FROM base_tokens) S "
                "GROUP BY T.token, S.size"
            )
            assert _normalize(memory.query(sql)) == _normalize(sqlite.query(sql))
        finally:
            sqlite.close()
