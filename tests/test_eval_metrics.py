"""Unit and property tests for the accuracy metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    average_precision,
    max_f1,
    mean_average_precision,
    mean_max_f1,
    precision_at,
    precision_recall_curve,
    recall_at,
)

rankings = st.lists(st.integers(0, 30), min_size=0, max_size=20, unique=True)
relevants = st.sets(st.integers(0, 30), min_size=1, max_size=10)


class TestPrecisionRecall:
    def test_precision_at_rank(self):
        ranking = [1, 9, 2, 8]
        relevant = {1, 2, 3}
        assert precision_at(ranking, relevant, 1) == 1.0
        assert precision_at(ranking, relevant, 2) == 0.5
        assert precision_at(ranking, relevant, 3) == pytest.approx(2 / 3)

    def test_recall_at_rank(self):
        ranking = [1, 9, 2, 8]
        relevant = {1, 2, 3}
        assert recall_at(ranking, relevant, 1) == pytest.approx(1 / 3)
        assert recall_at(ranking, relevant, 4) == pytest.approx(2 / 3)

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            precision_at([1], {1}, 0)
        with pytest.raises(ValueError):
            recall_at([1], {1}, -1)

    def test_curve_shape(self):
        curve = precision_recall_curve([1, 9, 2], {1, 2})
        assert curve == [
            (1.0, 0.5),
            (0.5, 0.5),
            (pytest.approx(2 / 3), 1.0),
        ]


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([1, 2, 3], {1, 2, 3}) == 1.0

    def test_worst_ranking(self):
        assert average_precision([9, 8, 7], {1, 2}) == 0.0

    def test_partial_retrieval_penalized(self):
        # only one of two relevant records retrieved, at rank 1
        assert average_precision([1, 9], {1, 2}) == 0.5

    def test_textbook_example(self):
        ranking = [5, 1, 9, 2]
        relevant = {1, 2}
        # hits at ranks 2 (precision 1/2) and 4 (precision 2/4)
        assert average_precision(ranking, relevant) == pytest.approx((0.5 + 0.5) / 2)

    def test_empty_relevant_set(self):
        assert average_precision([1, 2], set()) == 0.0

    def test_empty_ranking(self):
        assert average_precision([], {1}) == 0.0

    @given(rankings, relevants)
    def test_range(self, ranking, relevant):
        assert 0.0 <= average_precision(ranking, relevant) <= 1.0

    @given(relevants)
    def test_perfect_prefix_property(self, relevant):
        ranking = sorted(relevant)
        assert average_precision(ranking, relevant) == pytest.approx(1.0)

    @given(rankings, relevants)
    @settings(max_examples=60)
    def test_prepending_irrelevant_never_helps(self, ranking, relevant):
        prefixed = [99] + ranking  # 99 is outside the relevant universe
        assert average_precision(prefixed, relevant) <= average_precision(ranking, relevant) + 1e-12


class TestMaxF1:
    def test_perfect(self):
        assert max_f1([1, 2], {1, 2}) == 1.0

    def test_zero_when_nothing_relevant_retrieved(self):
        assert max_f1([8, 9], {1}) == 0.0

    def test_intermediate(self):
        # Best prefix is [1]: precision 1, recall 0.5 -> F1 = 2/3
        assert max_f1([1, 9, 8], {1, 2}) == pytest.approx(2 / 3)

    @given(rankings, relevants)
    def test_range(self, ranking, relevant):
        assert 0.0 <= max_f1(ranking, relevant) <= 1.0

    @given(rankings, relevants)
    @settings(max_examples=60)
    def test_at_least_any_prefix_f1(self, ranking, relevant):
        best = max_f1(ranking, relevant)
        for precision, recall in precision_recall_curve(ranking, relevant):
            if precision + recall:
                assert best >= 2 * precision * recall / (precision + recall) - 1e-12


class TestMeans:
    def test_mean_average_precision(self):
        value = mean_average_precision([[1], [9]], [{1}, {1}])
        assert value == pytest.approx(0.5)

    def test_mean_max_f1(self):
        value = mean_max_f1([[1], [9]], [{1}, {1}])
        assert value == pytest.approx(0.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_average_precision([[1]], [{1}, {2}])
        with pytest.raises(ValueError):
            mean_max_f1([[1], [2]], [{1}])

    def test_empty_workload(self):
        assert mean_average_precision([], []) == 0.0
        assert mean_max_f1([], []) == 0.0
