"""Unit tests for the synthetic clean-source corpora."""

from __future__ import annotations

import pytest

from repro.datagen.sources import (
    COMPANY_SOURCE_SIZE,
    TITLES_SOURCE_SIZE,
    clean_source,
    company_names,
    dblp_titles,
    source_statistics,
)


class TestCompanyNames:
    def test_default_size_matches_paper(self):
        names = company_names()
        assert len(names) == COMPANY_SOURCE_SIZE == 2139

    def test_all_distinct(self):
        names = company_names(count=500)
        assert len(set(names)) == 500

    def test_deterministic_for_seed(self):
        assert company_names(count=50, seed=1) == company_names(count=50, seed=1)
        assert company_names(count=50, seed=1) != company_names(count=50, seed=2)

    def test_statistics_close_to_table_5_1(self):
        """Average length and words/tuple should resemble Table 5.1 (21.03 / 2.92)."""
        stats = source_statistics(company_names())
        assert 15 <= stats.average_length <= 30
        assert 2.0 <= stats.average_words <= 4.0

    def test_names_contain_legal_forms(self):
        names = company_names(count=200, seed=5)
        assert any(name.split()[-1].rstrip(".") in
                   {"Inc", "Incorporated", "Corp", "Corporation", "Ltd", "Limited",
                    "LLC", "Co", "Company", "Group", "Intl", "International",
                    "Bros", "Brothers", "Sons", "Assoc", "Associates"}
                   for name in names)


class TestDblpTitles:
    def test_default_size_matches_paper(self):
        assert len(dblp_titles(count=1000)) == 1000
        assert TITLES_SOURCE_SIZE == 10425

    def test_all_distinct(self):
        titles = dblp_titles(count=800)
        assert len(set(titles)) == 800

    def test_statistics_close_to_table_5_1(self):
        """Average length and words/tuple should resemble Table 5.1 (33.55 / 4.53)."""
        stats = source_statistics(dblp_titles(count=3000))
        assert 25 <= stats.average_length <= 50
        assert 3.5 <= stats.average_words <= 6.5

    def test_titles_longer_than_company_names(self):
        company_stats = source_statistics(company_names(count=1000))
        title_stats = source_statistics(dblp_titles(count=1000))
        assert title_stats.average_length > company_stats.average_length
        assert title_stats.average_words > company_stats.average_words


class TestCleanSource:
    def test_named_sources(self):
        assert len(clean_source("company", count=100)) == 100
        assert len(clean_source("titles", count=100)) == 100

    def test_unknown_source(self):
        with pytest.raises(ValueError):
            clean_source("censuses")

    def test_statistics_of_empty_corpus(self):
        stats = source_statistics([])
        assert stats.num_tuples == 0
        assert stats.average_length == 0.0
