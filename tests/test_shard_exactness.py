"""Sharded execution must be bit-identical to unsharded execution.

The sharding subsystem's whole contract is exactness: partitioning the base
relation and broadcasting globally computed collection statistics must not
change a single float.  These tests check that contract property-based
(random corpora x shard counts x k values x blockers) for the weighted
predicates, plus the structural invariant that a shard-local fit equals a
*slice* of the global fit, the executor strategies, and the engine wiring
(``num_shards=`` / ``Query.shards`` / plan + explain reporting).
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import make_blocker
from repro.core.predicates.registry import make_predicate
from repro.engine import SimilarityEngine
from repro.shard import (
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardedPredicate,
    ThreadShardExecutor,
    make_executor,
    shard_offsets,
)

#: The predicates whose scores depend on collection statistics -- the ones
#: naive partitioning would get wrong, and the ISSUE's exactness target.
WEIGHTED = ["weighted_match", "weighted_jaccard", "cosine", "bm25"]

ALL_DIRECT = WEIGHTED + [
    "intersect",
    "jaccard",
    "lm",
    "hmm",
    "edit_distance",
    "ges",
    "ges_jaccard",
    "ges_apx",
    "soft_tfidf",
]

CORPUS = [
    "AT&T Corporation",
    "ATT Corp",
    "A T and T Corporation",
    "International Business Machines",
    "Intl Business Machines Corp",
    "IBM Corporation",
    "Morgan Stanley Inc",
    "Morgn Stanley Incorporated",
    "Goldman Sachs Group",
    "Goldmann Sachs Grp",
    "Deutsche Bank AG",
    "Deutsch Bank",
]

_words = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "corp", "inc", "intl", "ab", "ba", "aa"]
)
_strings = st.lists(_words, min_size=1, max_size=4).map(" ".join)
_corpora = st.lists(_strings, min_size=2, max_size=24)
_shard_counts = st.sampled_from([1, 2, 7])


def _pairs(scored):
    return [(m.tid, m.score) for m in scored]


def _sharded(name, corpus, num_shards, executor="serial", **kwargs):
    return ShardedPredicate(
        lambda: make_predicate(name, **kwargs),
        num_shards=num_shards,
        executor=executor,
    ).fit(corpus)


class TestShardOffsets:
    def test_balanced_partition(self):
        assert shard_offsets(10, 4) == [0, 3, 6, 8, 10]
        assert shard_offsets(9, 3) == [0, 3, 6, 9]
        assert shard_offsets(2, 7) == [0, 1, 2, 2, 2, 2, 2, 2]
        assert shard_offsets(0, 1) == [0, 0]

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_offsets(5, 0)


class TestShardedExactness:
    """Property: sharded select/top_k/rank/run_many == unsharded, bit for bit."""

    @pytest.mark.parametrize("name", WEIGHTED)
    @given(
        corpus=_corpora,
        query=_strings,
        k=st.integers(0, 20),
        num_shards=_shard_counts,
    )
    @settings(max_examples=25, deadline=None)
    def test_topk_and_rank(self, name, corpus, query, k, num_shards):
        base = make_predicate(name).fit(corpus)
        sharded = _sharded(name, corpus, num_shards)
        assert _pairs(sharded.top_k(query, k)) == _pairs(base.top_k(query, k))
        assert _pairs(sharded.rank(query)) == _pairs(base.rank(query))

    @pytest.mark.parametrize("name", WEIGHTED)
    @given(
        corpus=_corpora,
        query=_strings,
        threshold=st.floats(0.0, 5.0),
        num_shards=_shard_counts,
    )
    @settings(max_examples=25, deadline=None)
    def test_select(self, name, corpus, query, threshold, num_shards):
        base = make_predicate(name).fit(corpus)
        sharded = _sharded(name, corpus, num_shards)
        assert _pairs(sharded.select(query, threshold)) == _pairs(
            base.select(query, threshold)
        )
        assert sharded.last_num_candidates == base.last_num_candidates

    @pytest.mark.parametrize("name", WEIGHTED)
    @given(
        corpus=_corpora,
        queries=st.lists(_strings, min_size=1, max_size=4),
        k=st.integers(1, 8),
        num_shards=_shard_counts,
    )
    @settings(max_examples=20, deadline=None)
    def test_run_many(self, name, corpus, queries, k, num_shards):
        base = make_predicate(name).fit(corpus)
        sharded = _sharded(name, corpus, num_shards)
        batches = sharded.run_many(queries, op="top_k", k=k)
        expected = [base.top_k(query, k) for query in queries]
        assert [_pairs(b) for b in batches] == [_pairs(b) for b in expected]
        # Batches record per-qid counts and reset the single-query counter.
        assert len(sharded.last_batch_candidates) == len(queries)
        assert sharded.last_num_candidates is None

    @pytest.mark.parametrize("name", ALL_DIRECT)
    def test_every_direct_predicate_on_company_corpus(self, name):
        corpus = CORPUS * 3
        base = make_predicate(name).fit(corpus)
        sharded = _sharded(name, corpus, 7)
        for query in ("Morgn Stanley", "IBM Corp", "Goldman Sachs Group", "zzz"):
            assert _pairs(sharded.rank(query)) == _pairs(base.rank(query))
            assert _pairs(sharded.top_k(query, 5)) == _pairs(base.top_k(query, 5))

    @pytest.mark.parametrize("name", ["bm25", "weighted_match", "jaccard"])
    def test_score_parity_under_blocker_and_restriction(self, name):
        # Unsharded score() ignores blockers/restrictions for post-scoring
        # families (it reads the raw _scores dict) but honors them for
        # pre-scoring ones; sharded score() must mirror both behaviours.
        base = make_predicate(name).fit(CORPUS)
        sharded = _sharded(name, CORPUS, 3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            base.set_blocker(make_blocker("lsh", lsh_bands=4, lsh_rows=2))
            sharded.set_blocker(make_blocker("lsh", lsh_bands=4, lsh_rows=2))
        for query in ("Morgan Stanley", "Deutsche Bank"):
            for tid in range(len(CORPUS)):
                assert sharded.score(query, tid) == base.score(query, tid), (
                    name,
                    query,
                    tid,
                )
        base.set_blocker(None)
        sharded.set_blocker(None)
        allowed = {0, 4, 7}
        with base.restrict_candidates(allowed), sharded.restrict_candidates(allowed):
            for tid in range(len(CORPUS)):
                assert sharded.score("Morgan Stanley", tid) == base.score(
                    "Morgan Stanley", tid
                ), (name, tid)

    @pytest.mark.parametrize("name", WEIGHTED)
    def test_score_routes_to_owning_shard(self, name):
        base = make_predicate(name).fit(CORPUS)
        sharded = _sharded(name, CORPUS, 5)
        for query in ("Morgan Stanley", "IBM", ""):
            for tid in range(len(CORPUS)):
                assert sharded.score(query, tid) == base.score(query, tid)
        assert sharded.score("Morgan", -1) == 0.0
        assert sharded.score("Morgan", len(CORPUS) + 3) == 0.0


class TestShardedBlocking:
    """Blockers apply pre-partition: fitted globally, decided on global ids."""

    @given(corpus=_corpora, query=_strings, num_shards=_shard_counts)
    @settings(max_examples=20, deadline=None)
    def test_jaccard_with_exact_filters(self, corpus, query, num_shards):
        threshold = 0.4
        base = make_predicate("jaccard").fit(corpus)
        base.set_blocker(make_blocker("length+prefix", threshold=threshold))
        sharded = _sharded("jaccard", corpus, num_shards)
        sharded.set_blocker(make_blocker("length+prefix", threshold=threshold))
        assert _pairs(sharded.select(query, threshold)) == _pairs(
            base.select(query, threshold)
        )
        assert _pairs(sharded.rank(query)) == _pairs(base.rank(query))
        assert _pairs(sharded.top_k(query, 5)) == _pairs(base.top_k(query, 5))

    @pytest.mark.parametrize("name", WEIGHTED)
    @given(corpus=_corpora, query=_strings, num_shards=_shard_counts)
    @settings(max_examples=15, deadline=None)
    def test_weighted_with_lsh(self, name, corpus, query, num_shards):
        def blocked(predicate):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", UserWarning)
                predicate.set_blocker(make_blocker("lsh", lsh_bands=4, lsh_rows=2))
            return predicate

        base = blocked(make_predicate(name).fit(corpus))
        sharded = blocked(_sharded(name, corpus, num_shards))
        assert _pairs(sharded.rank(query)) == _pairs(base.rank(query))
        assert _pairs(sharded.top_k(query, 4)) == _pairs(base.top_k(query, 4))
        assert _pairs(sharded.select(query, 0.5)) == _pairs(base.select(query, 0.5))

    def test_restriction_uses_global_ids(self):
        base = make_predicate("bm25").fit(CORPUS)
        sharded = _sharded("bm25", CORPUS, 4)
        allowed = {1, 6, 7, 11}
        with base.restrict_candidates(allowed), sharded.restrict_candidates(allowed):
            for query in ("Morgan Stanley", "Deutsche Bank"):
                assert _pairs(sharded.rank(query)) == _pairs(base.rank(query))
                assert _pairs(sharded.top_k(query, 3)) == _pairs(base.top_k(query, 3))


class TestSliceInvariant:
    """A shard-local fit equals a slice of the global fit."""

    @pytest.mark.parametrize("name", WEIGHTED)
    def test_shard_weighted_index_equals_global_slice(self, name):
        corpus = CORPUS * 2
        base = make_predicate(name).fit(corpus)
        sharded = _sharded(name, corpus, 3)
        offsets = sharded.offsets
        for shard_id, shard in enumerate(sharded.shards):
            expected = base._weighted_index.slice(
                offsets[shard_id], offsets[shard_id + 1]
            )
            assert shard._weighted_index._postings == expected._postings
            assert shard._weighted_index._max == expected._max
            assert shard._weighted_index._min == expected._min

    def test_inverted_index_slice_matches_refit(self):
        from repro.core.index import InvertedIndex

        token_lists = [["a", "b"], ["b", "c"], ["c", "a"], ["a", "a", "d"]]
        full = InvertedIndex(token_lists)
        sliced = full.slice(1, 3)
        rebuilt = InvertedIndex(token_lists[1:3])
        assert sliced._postings == rebuilt._postings
        assert [dict(c) for c in sliced._term_frequencies] == [
            dict(c) for c in rebuilt._term_frequencies
        ]


class TestExecutors:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_executors_are_exact(self, executor):
        corpus = CORPUS * 4
        base = make_predicate("bm25").fit(corpus)
        sharded = _sharded("bm25", corpus, 4, executor=executor)
        try:
            for query in ("Morgan Stanley Inc", "IBM Corp", "Goldman"):
                assert _pairs(sharded.top_k(query, 5)) == _pairs(base.top_k(query, 5))
                assert _pairs(sharded.select(query, 2.0)) == _pairs(
                    base.select(query, 2.0)
                )
            batches = sharded.run_many(["Morgan Stanley", "IBM"], op="top_k", k=3)
            expected = [base.top_k(q, 3) for q in ("Morgan Stanley", "IBM")]
            assert [_pairs(b) for b in batches] == [_pairs(b) for b in expected]
        finally:
            sharded.close()

    def test_executor_instances_cannot_be_shared(self):
        # An executor holds per-predicate shard state; a second predicate
        # binding a live instance would silently redirect the first
        # predicate's queries to the wrong shards -- it must fail loudly.
        executor = SerialShardExecutor()
        first = ShardedPredicate(
            lambda: make_predicate("bm25"), num_shards=2, executor=executor
        ).fit(CORPUS)
        with pytest.raises(ValueError, match="cannot be shared"):
            ShardedPredicate(
                lambda: make_predicate("bm25"), num_shards=2, executor=executor
            ).fit(CORPUS[:6])
        # The original binding is intact, and refits of the owner still work.
        assert len(first.top_k("Morgan Stanley", 3)) == 3
        first.fit(CORPUS)
        assert len(first.top_k("Morgan Stanley", 3)) == 3

    def test_close_leaves_caller_owned_executor_running(self):
        executor = ThreadShardExecutor(max_workers=2)
        try:
            sharded = ShardedPredicate(
                lambda: make_predicate("bm25"), num_shards=2, executor=executor
            ).fit(CORPUS)
            sharded.close()  # caller-owned: must stay usable
            assert len(sharded.top_k("Morgan Stanley", 3)) == 3
        finally:
            executor.close()

    def test_process_executor_recovers_after_close(self):
        # clear_cache() closes owned pools; a later query on a still-live
        # predicate must lazily re-register the shards and fork fresh
        # workers instead of failing on a retired registry key.
        sharded = _sharded("bm25", CORPUS * 2, 2, executor="process")
        base = make_predicate("bm25").fit(CORPUS * 2)
        try:
            assert _pairs(sharded.top_k("Morgan Stanley", 3)) == _pairs(
                base.top_k("Morgan Stanley", 3)
            )
            sharded._executor.close()
            assert _pairs(sharded.top_k("IBM Corp", 3)) == _pairs(
                base.top_k("IBM Corp", 3)
            )
        finally:
            sharded.close()

    def test_make_executor_resolves_names_and_instances(self):
        assert isinstance(make_executor(None), SerialShardExecutor)
        assert isinstance(make_executor("serial"), SerialShardExecutor)
        assert isinstance(make_executor("thread"), ThreadShardExecutor)
        assert isinstance(make_executor("process"), ProcessShardExecutor)
        instance = SerialShardExecutor()
        assert make_executor(instance) is instance
        with pytest.raises(ValueError):
            make_executor("cluster")

    def test_topk_aggregates_pruning_and_shard_stats(self):
        corpus = CORPUS * 25
        sharded = _sharded("bm25", corpus, 4)
        base = make_predicate("bm25").fit(corpus)
        query = "Morgan Stanley Inc"
        assert _pairs(sharded.top_k(query, 3)) == _pairs(base.top_k(query, 3))
        stats = sharded.pruning_stats
        assert stats is not None
        assert stats.postings_opened + stats.postings_skipped == stats.postings_total
        shard_stats = sharded.shard_stats
        assert shard_stats.num_shards == 4
        assert shard_stats.shards_run + shard_stats.shards_skipped == 4
        assert "shards run" in shard_stats.describe()

    def test_skewed_corpus_skips_shards(self):
        # The first shard holds every Morgan-like tuple (rare tokens, high RS
        # weight); the other shards share no q-gram with the query, so their
        # max-score bound is 0 and they must be skipped once the first shard
        # establishes a positive k-th score.
        corpus = ["Morgan Stanley Incorporated"] * 10 + [
            "zzz qqq xxx",
            "vvv www yyy",
            "kkk lll uuu",
            "fff jjj bbb",
        ] * 15
        sharded = _sharded("weighted_match", corpus, 4)
        base = make_predicate("weighted_match").fit(corpus)
        query = "Morgan Stanley Incorporated"
        assert _pairs(sharded.top_k(query, 5)) == _pairs(base.top_k(query, 5))
        assert sharded.shard_stats.shards_skipped > 0


class TestEngineSharding:
    def test_engine_default_and_per_query_override(self):
        engine = SimilarityEngine(num_shards=3)
        sharded = engine.from_strings(CORPUS).predicate("bm25")
        unsharded = sharded.shards(1)
        for query in ("Morgan Stanley", "IBM Corp"):
            assert [(m.tid, m.score, m.string) for m in sharded.top_k(query, 4)] == [
                (m.tid, m.score, m.string) for m in unsharded.top_k(query, 4)
            ]
            assert _pairs(sharded.select(query, 1.0)) == _pairs(
                unsharded.select(query, 1.0)
            )

    def test_plan_reports_shard_layout(self):
        engine = SimilarityEngine()
        query = engine.from_strings(CORPUS).predicate("bm25").shards(4)
        notes = " | ".join(query.plan("top_k").notes)
        assert "4 shards" in notes
        assert "serial" in notes
        assert "exact merge" in notes

    def test_plan_notes_sharding_ignored_for_declarative(self):
        engine = SimilarityEngine(num_shards=4)
        query = (
            engine.from_strings(CORPUS[:6]).predicate("bm25").realization("declarative")
        )
        assert any("sharding ignored" in note for note in query.plan("rank").notes)

    def test_explain_reports_shard_stats(self):
        engine = SimilarityEngine()
        report = (
            engine.from_strings(CORPUS * 5)
            .predicate("bm25")
            .shards(3)
            .explain("Morgan Stanley Inc", k=4)
        )
        assert report.shards is not None
        assert report.shards.num_shards == 3
        assert report.pruning is not None
        assert "shards:" in report.describe()

    def test_sharded_run_many_matches_unsharded(self):
        engine = SimilarityEngine()
        queries = ["Morgan Stanley", "IBM Corp", "Goldman Sachs"]
        sharded = engine.from_strings(CORPUS).predicate("cosine").shards(2)
        unsharded = engine.from_strings(CORPUS).predicate("cosine")
        assert [
            [_pairs([m])[0] for m in batch]
            for batch in sharded.run_many(queries, op="top_k", k=3)
        ] == [
            [_pairs([m])[0] for m in batch]
            for batch in unsharded.run_many(queries, op="top_k", k=3)
        ]
        stats = sharded.last_run_many_stats
        assert stats is not None and stats.num_queries == len(queries)

    def test_sharded_join_and_dedup(self):
        engine = SimilarityEngine(num_shards=3)
        sharded = engine.from_strings(CORPUS)
        unsharded = engine.from_strings(CORPUS).shards(1)
        probe = ["Morgn Stanley", "IBM Corp"]
        assert [
            (m.left_id, m.right_id, m.score)
            for m in sharded.join(probe, threshold=2.0, top_k=2)
        ] == [
            (m.left_id, m.right_id, m.score)
            for m in unsharded.join(probe, threshold=2.0, top_k=2)
        ]
        assert [
            tuple(cluster.members) for cluster in sharded.dedup(threshold=6.0)
        ] == [tuple(cluster.members) for cluster in unsharded.dedup(threshold=6.0)]

    def test_predicate_instances_stay_unsharded(self):
        engine = SimilarityEngine(num_shards=4)
        instance = make_predicate("bm25")
        query = engine.from_strings(CORPUS).predicate(instance)
        assert query._sharding_active() is False
        assert any("sharding ignored" in note for note in query.plan("rank").notes)
        results = query.top_k("Morgan Stanley", 3)
        assert len(results) == 3

    def test_clear_cache_closes_shard_executors(self):
        engine = SimilarityEngine()
        query = engine.from_strings(CORPUS).predicate("bm25").shards(
            2, executor="thread"
        )
        query.top_k("Morgan Stanley", 3)
        predicate = query.fitted_predicate()
        assert isinstance(predicate, ShardedPredicate)
        engine.clear_cache()
        # The predicate still answers (serial fallback through a fresh pool
        # would rebind lazily); the engine state cache is empty.
        assert engine.cache_size == 0

    def test_rejects_invalid_shard_counts(self):
        engine = SimilarityEngine()
        with pytest.raises(ValueError):
            engine.from_strings(CORPUS).shards(0)
        with pytest.raises(ValueError):
            SimilarityEngine(num_shards=0)


class TestTimingHarness:
    def test_time_queries_supports_sharding(self):
        from repro.eval.timing import time_queries

        timing = time_queries(
            "bm25", CORPUS * 3, ["Morgan Stanley", "IBM"], num_shards=2
        )
        assert timing.num_queries == 2
        assert timing.total_seconds >= 0.0

    def test_time_queries_rejects_sharded_instances(self):
        from repro.eval.timing import time_queries

        with pytest.raises(ValueError):
            time_queries(
                make_predicate("bm25"), CORPUS, ["Morgan"], num_shards=2
            )
