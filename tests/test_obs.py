"""Observability layer tests: span trees, metrics, and stats consistency.

The load-bearing guarantees:

* **Consistency** -- span-level counters must *equal* the engine's stats
  objects: a traced ``top_k`` yields per-shard spans whose aggregated
  posting/candidate counters match ``explain()``'s :class:`PruningStats`
  exactly, across realizations and shard counts (including skipped shards).
* **Zero-cost default** -- the no-op tracer must leave results bit-identical
  and capture nothing (a long-lived engine accumulates no statement text).
* **Clock discipline** -- ``time.perf_counter`` is called only through
  :func:`repro.obs.clock.perf_clock` (mirrors the CI grep ban).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.engine import SimilarityEngine
from repro.obs import (
    NOOP_TRACER,
    Histogram,
    MetricsRegistry,
    Span,
    Tracer,
    bench_envelope,
    metrics_to_json,
    trace_to_json,
    write_json,
)

COMPANIES = [
    "Morgan Stanley Group Inc",
    "Morgn Stanley Inc",
    "Goldman Sachs & Co",
    "Golden Sax Co",
    "AT&T Corporation",
    "ATT Corp",
    "Beijing Hotel Holdings",
    "Bejing Hotel Holding",
    "Shanghai Hotel Group",
    "International Business Machines",
    "Intl Business Machines Corp",
    "Microsoft Corporation",
    "Micro Soft Corp",
    "First National Bank",
    "First Natl Bank Inc",
    "Second National Bank",
]


class _FakeClock:
    """Deterministic clock: each call returns the next integer."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestSpanTree:
    def test_nesting_durations_and_last_root(self):
        tracer = Tracer(clock=_FakeClock())
        with tracer.span("root", op="rank") as root:
            assert tracer.current is root
            with tracer.span("child") as child:
                child.set(rows=7).add("rows", 3)
        # clock ticks: root start=1, child start=2, child end=3, root end=4
        assert root.duration == 3.0
        assert child.duration == 1.0
        assert child.attributes["rows"] == 10
        assert root.children == [child]
        assert tracer.current is None
        assert tracer.last_root is root

    def test_roundtrip_and_queries(self):
        root = Span("root", start=1.0, end=5.0, attributes={"k": 3})
        root.attach(Span("shard[0].task", attributes={"rows": 2}))
        root.attach(Span("shard[1].task", attributes={"rows": 5}))
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt.to_dict() == root.to_dict()
        assert rebuilt.sum_attribute("rows") == 7
        assert [s.name for s in rebuilt.find_all("shard[")] == [
            "shard[0].task",
            "shard[1].task",
        ]
        assert rebuilt.find("shard[1].task").attributes["rows"] == 5
        assert "shard[0].task" in rebuilt.describe()

    def test_exception_still_closes_span(self):
        tracer = Tracer(clock=_FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                raise RuntimeError("boom")
        assert tracer.current is None
        assert tracer.last_root.name == "root"
        assert tracer.last_root.end > tracer.last_root.start

    def test_noop_tracer_is_inert(self):
        span = NOOP_TRACER.span("anything", k=3)
        with span as inner:
            inner.set(rows=5).add("rows")
            inner.attach(Span("child"))
        assert not NOOP_TRACER.enabled
        assert NOOP_TRACER.current is None
        assert NOOP_TRACER.last_root is None
        assert inner.attributes == {}
        assert inner.children == []


class TestMetrics:
    def test_counters_and_histograms(self):
        metrics = MetricsRegistry()
        metrics.inc("queries_total")
        metrics.inc("queries_total", 4)
        assert metrics.value("queries_total") == 5
        assert metrics.value("never_touched") == 0
        histogram = metrics.histogram("latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            metrics.observe("latency", value)
        assert histogram.count == 4
        assert histogram.counts == [1, 2, 1]  # <=0.1, <=1.0, overflow
        assert histogram.mean == pytest.approx(6.25 / 4)
        assert histogram.quantile(0.25) == 0.1
        assert histogram.quantile(0.75) == 1.0
        assert histogram.quantile(1.0) == float("inf")

    def test_empty_histogram_and_validation(self):
        histogram = Histogram("empty", buckets=(1.0,))
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.quantile(0.0)
        with pytest.raises(ValueError):
            Histogram("no-buckets", buckets=())

    def test_snapshot_and_reset(self):
        metrics = MetricsRegistry()
        metrics.inc("b")
        metrics.inc("a", 2)
        metrics.observe("lat", 0.01)
        snapshot = metrics.to_dict()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["histograms"]["lat"]["count"] == 1
        metrics.reset()
        assert metrics.to_dict() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestExport:
    def test_json_payloads_roundtrip(self, tmp_path: Path):
        root = Span("engine.query", start=0.0, end=1.0, attributes={"op": "rank"})
        trace_payload = trace_to_json(root)
        assert trace_payload["schema"] == "repro.obs/1"
        assert trace_payload["kind"] == "trace"
        metrics = MetricsRegistry()
        metrics.inc("queries_total")
        metrics_payload = metrics_to_json(metrics)
        assert metrics_payload["kind"] == "metrics"
        bench_payload = bench_envelope(
            benchmark="b", relation={"size": 3}, config={"k": 1}, results=[{"x": 1}]
        )
        assert bench_payload["kind"] == "bench"
        path = tmp_path / "out.json"
        write_json(path, trace_payload)
        assert json.loads(path.read_text())["root"]["name"] == "engine.query"


@pytest.fixture
def engine():
    engine = SimilarityEngine(metrics=MetricsRegistry())
    yield engine
    engine.clear_cache()


def _pruning_counters(span):
    return {
        key: span.sum_attribute(key)
        for key in (
            "tokens_total",
            "postings_total",
            "postings_opened",
            "postings_skipped",
            "candidates_scored",
            "candidates_rescored",
        )
    }


class TestTraceExplainConsistency:
    """Span counters must equal the stats objects, layer by layer."""

    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    def test_sharded_top_k_span_counters_match_explain(self, engine, num_shards):
        query = (
            engine.from_strings(COMPANIES)
            .predicate("cosine")
            .shards(num_shards, executor="serial")
        )
        traced = query.trace("Morgn Stanley", op="top_k", k=3)
        report = query.explain("Morgn Stanley", op="top_k", k=3)
        assert report.pruning is not None
        counters = _pruning_counters(traced.span)
        assert counters["tokens_total"] == report.pruning.tokens_total
        assert counters["postings_total"] == report.pruning.postings_total
        assert counters["postings_opened"] == report.pruning.postings_opened
        assert counters["postings_skipped"] == report.pruning.postings_skipped
        assert counters["candidates_scored"] == report.pruning.candidates_scored
        assert counters["candidates_rescored"] == report.pruning.candidates_rescored
        # The traced and explained runs are the same run, result for result.
        assert [(m.tid, m.score) for m in traced.results] == [
            (m.tid, m.score) for m in report.results
        ]
        execute = traced.span.find("execute.sharded")
        shard_spans = traced.span.find_all("shard[")
        if num_shards == 1:
            assert execute is None  # single shard plans as a direct predicate
        else:
            assert execute is not None
            assert len(shard_spans) == report.shards.num_shards
            ran = [s for s in shard_spans if not s.attributes.get("skipped")]
            skipped = [s for s in shard_spans if s.attributes.get("skipped")]
            assert len(ran) == report.shards.shards_run
            assert len(skipped) == report.shards.shards_skipped
            assert execute.attributes["num_candidates"] == report.num_candidates

    @pytest.mark.parametrize("num_shards", [2, 7])
    def test_parallel_executor_spans_travel_back(self, engine, num_shards):
        query = (
            engine.from_strings(COMPANIES)
            .predicate("bm25")
            .shards(num_shards, executor="thread")
        )
        traced = query.trace("Beijing Hotel", op="top_k", k=2)
        report = query.explain("Beijing Hotel", op="top_k", k=2)
        assert _pruning_counters(traced.span)["candidates_scored"] == (
            report.pruning.candidates_scored
        )
        assert traced.span.find_all("shard[")  # worker spans re-attached

    def test_direct_top_k_postings_scan_matches_explain(self, engine):
        query = engine.from_strings(COMPANIES).predicate("cosine")
        traced = query.trace("Morgn Stanley", op="top_k", k=3)
        report = query.explain("Morgn Stanley", op="top_k", k=3)
        scan = traced.span.find("postings.scan")
        assert scan is not None
        assert scan.attributes["postings_opened"] == report.pruning.postings_opened
        assert scan.attributes["postings_skipped"] == report.pruning.postings_skipped
        assert scan.attributes["candidates_scored"] == report.pruning.candidates_scored
        execute = traced.span.find("execute.direct")
        assert execute.attributes["num_candidates"] == report.num_candidates

    def test_declarative_sql_spans_match_explain_sql(self, engine):
        query = (
            engine.from_strings(COMPANIES)
            .predicate("jaccard")
            .realization("declarative")
        )
        query.fitted_predicate()  # fit outside the traced window
        traced = query.trace("Morgn Stanley", op="top_k", k=3)
        report = query.explain("Morgn Stanley", op="top_k", k=3)
        traced_sql = tuple(
            s.attributes["sql"]
            for s in traced.span.walk()
            if s.name == "sql.statement"
        )
        assert traced_sql == report.sql
        assert len(traced_sql) > 0
        execute = traced.span.find("execute.declarative")
        assert execute is not None
        assert execute.attributes["sql_rows"] == report.sql_stats.rows_scored

    def test_engine_metrics_accumulate(self, engine):
        query = engine.from_strings(COMPANIES).predicate("cosine")
        query.top_k("Morgn Stanley", 3)
        query.top_k("Goldman Sachs", 3)
        query.rank("AT&T")
        assert engine.metrics.value("queries_total") == 3
        assert engine.metrics.value("fits_total") == 1
        assert engine.metrics.value("postings_opened") > 0
        assert engine.metrics.histogram("latency.engine.query").count == 3
        # A second engine with its own registry starts from zero.
        other = SimilarityEngine(metrics=MetricsRegistry())
        assert other.metrics.value("queries_total") == 0

    def test_cache_hits_counted(self, engine):
        query = engine.from_strings(COMPANIES).predicate("cosine")
        query.top_k("Morgn Stanley", 3)
        before = engine.metrics.value("cache_hits")
        query.top_k("Goldman Sachs", 3)
        assert engine.metrics.value("cache_hits") == before + 1

    def test_shard_tasks_counted(self, engine):
        query = (
            engine.from_strings(COMPANIES)
            .predicate("cosine")
            .shards(2, executor="serial")
        )
        query.rank("Morgn Stanley")
        assert engine.metrics.value("shard_tasks") == 2
        assert engine.metrics.value("shards_run") == 2


class TestNoopDefault:
    def test_default_engine_results_identical_to_traced(self):
        plain = SimilarityEngine(metrics=MetricsRegistry())
        traced_engine = SimilarityEngine(
            tracer=Tracer(), metrics=MetricsRegistry()
        )
        for predicate in ("cosine", "jaccard", "edit_distance"):
            baseline = plain.from_strings(COMPANIES).predicate(predicate)
            traced = traced_engine.from_strings(COMPANIES).predicate(predicate)
            assert [
                (m.tid, m.score) for m in baseline.top_k("Morgn Stanley", 5)
            ] == [(m.tid, m.score) for m in traced.top_k("Morgn Stanley", 5)]
            assert [
                (m.tid, m.score) for m in baseline.select("Morgn Stanley", 0.3)
            ] == [(m.tid, m.score) for m in traced.select("Morgn Stanley", 0.3)]
        plain.clear_cache()
        traced_engine.clear_cache()

    def test_noop_engine_stores_no_spans(self):
        engine = SimilarityEngine(metrics=MetricsRegistry())
        query = (
            engine.from_strings(COMPANIES)
            .predicate("jaccard")
            .realization("declarative")
        )
        query.run_many(["Morgn Stanley", "AT&T"], op="rank")
        assert engine.obs.tracer is NOOP_TRACER
        assert engine.obs.tracer.last_root is None
        # ... but the metrics registry still counted the SQL statements.
        assert engine.metrics.value("sql_statements_total") > 0
        engine.clear_cache()

    def test_trace_restores_noop_tracer(self):
        engine = SimilarityEngine(metrics=MetricsRegistry())
        query = engine.from_strings(COMPANIES).predicate("cosine")
        traced = query.trace("Morgn Stanley", k=3)
        assert traced.span is not None
        assert engine.obs.tracer is NOOP_TRACER
        engine.clear_cache()


class TestEditDistanceShardParity:
    """Regression (heuristic-blocker parity corner): blocked sharded
    ``EditDistance.select`` consults the blocker's probe tokens; the
    unsharded path must generate candidates the same way."""

    @pytest.mark.parametrize("num_shards", [2, 3, 7])
    def test_blocked_select_identical_sharded_or_not(self, num_shards):
        import warnings

        base = COMPANIES + ["Stanley Morgan", "Morgan Stanly Group", "M Stanley"]
        engine = SimilarityEngine(metrics=MetricsRegistry())
        with warnings.catch_warnings():
            # prefix filtering on edit distance is a heuristic combination
            # (Jaccard-derived bounds) and warns; parity must hold anyway.
            warnings.simplefilter("ignore", UserWarning)
            for threshold in (0.2, 0.4, 0.6):
                unsharded = (
                    engine.from_strings(base)
                    .predicate("edit_distance")
                    .blocker("prefix", threshold=threshold)
                )
                sharded = unsharded.shards(num_shards, executor="serial")
                expected = unsharded.select("Morgn Stanley", threshold)
                got = sharded.select("Morgn Stanley", threshold)
                assert [(m.tid, m.score) for m in got] == [
                    (m.tid, m.score) for m in expected
                ]
        engine.clear_cache()


class TestClockDiscipline:
    def test_no_bare_perf_counter_outside_obs_clock(self):
        """Mirror of the CI ``lint-invariants`` job: rule RPL002 (the
        scope-aware replacement for the old grep ban) finds no sanctioned-
        clock violations outside ``repro/obs/clock.py``."""
        from repro.analysis import check_paths, load_config

        repo = Path(__file__).resolve().parent.parent
        config = load_config(repo)
        findings = check_paths(
            [repo / "src" / "repro", repo / "benchmarks", repo / "examples"],
            config=config.rules,
            select=["RPL002"],
            root=repo,
        )
        assert not findings, "\n".join(f.render() for f in findings)
