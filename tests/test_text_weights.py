"""Unit tests for collection statistics and weighting schemes."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.weights import (
    BM25Parameters,
    CollectionStatistics,
    bm25_document_weights,
    bm25_query_weights,
    idf_weights,
    rs_weights,
    tfidf_weights,
)


@pytest.fixture()
def stats() -> CollectionStatistics:
    return CollectionStatistics(
        [
            ["A", "B", "B"],
            ["A", "C"],
            ["D"],
            ["A", "B", "C", "D"],
        ]
    )


class TestCollectionStatistics:
    def test_num_tuples(self, stats):
        assert stats.num_tuples == 4
        assert len(stats) == 4

    def test_collection_size(self, stats):
        assert stats.collection_size == 10

    def test_average_length(self, stats):
        assert stats.average_length == pytest.approx(2.5)

    def test_lengths(self, stats):
        assert stats.lengths() == [3, 2, 1, 4]
        assert stats.length(0) == 3

    def test_term_frequency(self, stats):
        assert stats.term_frequency(0, "B") == 2
        assert stats.term_frequency(0, "Z") == 0

    def test_document_frequency(self, stats):
        assert stats.document_frequency("A") == 3
        assert stats.document_frequency("D") == 2
        assert stats.document_frequency("Z") == 0

    def test_collection_frequency(self, stats):
        assert stats.collection_frequency("B") == 3
        assert stats.collection_frequency("Z") == 0

    def test_tokens_roundtrip(self, stats):
        assert stats.tokens(1) == ["A", "C"]

    def test_vocabulary(self, stats):
        assert set(stats.vocabulary) == {"A", "B", "C", "D"}

    def test_idf_definition(self, stats):
        assert stats.idf("A") == pytest.approx(math.log(4) - math.log(3))
        assert stats.idf("D") == pytest.approx(math.log(4) - math.log(2))

    def test_idf_unseen_token_gets_average(self, stats):
        assert stats.idf("Z") == pytest.approx(stats.average_idf())

    def test_rs_weight_definition(self, stats):
        expected = math.log(4 - 3 + 0.5) - math.log(3 + 0.5)
        assert stats.rs_weight("A") == pytest.approx(expected)

    def test_rs_weight_is_negative_for_very_frequent_tokens(self, stats):
        # A appears in 3 of 4 tuples -> RS weight below zero.
        assert stats.rs_weight("A") < 0

    def test_rs_more_selective_than_idf_ordering(self, stats):
        # Both schemes must rank the rare token above the frequent one.
        assert stats.idf("D") > stats.idf("A")
        assert stats.rs_weight("D") > stats.rs_weight("A")

    def test_tables(self, stats):
        idf_table = stats.idf_table()
        rs_table = stats.rs_table()
        assert set(idf_table) == set(rs_table) == {"A", "B", "C", "D"}

    def test_empty_collection(self):
        empty = CollectionStatistics([])
        assert empty.num_tuples == 0
        assert empty.average_length == 0.0
        assert empty.average_idf() == 0.0


class TestWeightHelpers:
    def test_idf_weights_for_tokens(self, stats):
        weights = idf_weights(stats, ["A", "Z"])
        assert weights["A"] == pytest.approx(stats.idf("A"))
        assert weights["Z"] == pytest.approx(stats.average_idf())

    def test_rs_weights_for_tokens(self, stats):
        weights = rs_weights(stats, ["D"])
        assert weights["D"] == pytest.approx(stats.rs_weight("D"))

    def test_tfidf_weights_are_normalized(self):
        weights = tfidf_weights({"A": 2, "B": 1}, {"A": 1.0, "B": 2.0})
        norm = math.sqrt(sum(value * value for value in weights.values()))
        assert norm == pytest.approx(1.0)

    def test_tfidf_weights_zero_norm(self):
        weights = tfidf_weights({"A": 1}, {"A": 0.0})
        assert weights == {"A": 0.0}

    def test_tfidf_default_idf_used_for_unknown(self):
        weights = tfidf_weights({"A": 1, "B": 1}, {"A": 1.0}, default_idf=1.0)
        assert weights["A"] == pytest.approx(weights["B"])

    @given(st.dictionaries(st.text(min_size=1, max_size=3), st.integers(1, 5), min_size=1, max_size=6))
    def test_tfidf_norm_property(self, tf):
        idf = {token: 1.0 for token in tf}
        weights = tfidf_weights(tf, idf)
        norm = math.sqrt(sum(value * value for value in weights.values()))
        assert norm == pytest.approx(1.0)


class TestBM25Weights:
    def test_parameters_validation(self):
        with pytest.raises(ValueError):
            BM25Parameters(k1=-1)
        with pytest.raises(ValueError):
            BM25Parameters(b=1.5)

    def test_default_parameters_match_paper(self):
        params = BM25Parameters()
        assert params.k1 == 1.5
        assert params.k3 == 8.0
        assert params.b == 0.675

    def test_document_weights_sign_follows_rs(self, stats):
        weights = bm25_document_weights(stats, 3)
        # The frequent token A (3 of 4 tuples) gets a negative RS-based
        # weight; the rarer token D (exactly half the tuples) sits at the
        # RS zero point and must be weighted strictly higher than A.
        assert weights["A"] < 0
        assert weights["D"] == pytest.approx(0.0)
        assert weights["D"] > weights["A"]

    def test_document_weight_formula(self, stats):
        params = BM25Parameters()
        weights = bm25_document_weights(stats, 2, params)
        tf = 1
        k_d = params.k1 * ((1 - params.b) + params.b * stats.length(2) / stats.average_length)
        expected = stats.rs_weight("D") * (params.k1 + 1) * tf / (k_d + tf)
        assert weights["D"] == pytest.approx(expected)

    def test_query_weights_saturate(self):
        params = BM25Parameters(k3=8)
        weights = bm25_query_weights({"A": 1, "B": 100}, params)
        assert weights["A"] == pytest.approx(9 / 9)
        assert weights["B"] < (params.k3 + 1)
        assert weights["B"] > weights["A"]

    def test_query_weight_monotone_in_tf(self):
        weights = bm25_query_weights({"A": 1, "B": 2, "C": 3})
        assert weights["A"] < weights["B"] < weights["C"]
