"""Unit tests for the ASCII chart helpers."""

from __future__ import annotations

import pytest

from repro.eval.figures import bar_chart, grouped_bar_chart, line_chart


class TestBarChart:
    def test_basic_structure(self):
        chart = bar_chart({"BM25": 0.9, "Jaccard": 0.45}, width=10, title="MAP")
        lines = chart.splitlines()
        assert lines[0] == "MAP"
        assert lines[1].startswith("BM25")
        assert lines[1].count("#") == 10          # the maximum fills the width
        assert lines[2].count("#") == 5           # half the maximum -> half the bars

    def test_empty_values(self):
        assert "(no data)" in bar_chart({})

    def test_negative_values_clamped(self):
        chart = bar_chart({"a": -1.0, "b": 2.0}, width=4)
        assert chart.splitlines()[0].count("#") == 0

    def test_zero_maximum(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in chart

    def test_width_validation(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=0)

    def test_labels_aligned(self):
        chart = bar_chart({"short": 1.0, "a much longer label": 1.0})
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestGroupedBarChart:
    def test_sections_per_group(self):
        chart = grouped_bar_chart(
            {"dirty": {"BM25": 0.8}, "low": {"BM25": 1.0}}, width=10, title="Figure 5.1"
        )
        assert "[dirty]" in chart
        assert "[low]" in chart
        assert chart.splitlines()[0] == "Figure 5.1"

    def test_scaling_is_global_across_groups(self):
        chart = grouped_bar_chart({"g1": {"a": 1.0}, "g2": {"a": 0.5}}, width=10)
        lines = [line for line in chart.splitlines() if "#" in line]
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty_group(self):
        chart = grouped_bar_chart({"g": {}})
        assert "(no data)" in chart


class TestLineChart:
    def test_marks_and_axes(self):
        chart = line_chart(
            {"g1": [(0, 0.0), (10, 10.0)], "lm": [(0, 5.0), (10, 5.0)]},
            width=20,
            height=5,
            title="scalability",
        )
        assert chart.splitlines()[0] == "scalability"
        assert "G" in chart       # marks use the first letter, upper-cased
        assert "L" in chart
        assert "legend: G=g1, L=lm" in chart
        assert "x: [0 .. 10]" in chart

    def test_empty_series(self):
        assert "(no data)" in line_chart({})

    def test_single_point(self):
        chart = line_chart({"a": [(1.0, 2.0)]}, width=10, height=4)
        assert "A" in chart

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            line_chart({"a": [(0, 0)]}, width=1)
        with pytest.raises(ValueError):
            line_chart({"a": [(0, 0)]}, height=1)

    def test_monotone_series_renders_monotone_marks(self):
        chart = line_chart({"t": [(0, 0.0), (5, 5.0), (10, 10.0)]}, width=21, height=11)
        rows = [line[1:] for line in chart.splitlines() if line.startswith("|")]
        positions = {}
        for row_index, row in enumerate(rows):
            for column_index, char in enumerate(row):
                if char == "T":
                    positions[column_index] = row_index
        columns = sorted(positions)
        # larger x -> larger y -> smaller row index (higher on the plot)
        assert positions[columns[0]] > positions[columns[-1]]
