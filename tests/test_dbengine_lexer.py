"""Unit tests for the SQL tokenizer."""

from __future__ import annotations

import pytest

from repro.dbengine.errors import ParseError
from repro.dbengine.lexer import Token, tokenize


def kinds(sql: str) -> list[str]:
    return [token.kind for token in tokenize(sql)]


def values(sql: str) -> list[str]:
    return [token.value for token in tokenize(sql)[:-1]]


class TestTokenize:
    def test_simple_select(self):
        tokens = tokenize("SELECT a FROM t")
        assert [t.kind for t in tokens] == ["KEYWORD", "IDENT", "KEYWORD", "IDENT", "EOF"]

    def test_keywords_are_case_insensitive(self):
        assert tokenize("select")[0].value == "SELECT"

    def test_identifiers_preserve_case(self):
        assert tokenize("MyTable")[0].value == "MyTable"

    def test_string_literal(self):
        tokens = tokenize("SELECT 'hello world'")
        assert tokens[1].kind == "STRING"
        assert tokens[1].value == "hello world"

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("SELECT 'oops")

    def test_integer_and_float_numbers(self):
        tokens = tokenize("SELECT 1, 2.5, 0.001, 1e3, 2.5E-2")
        numbers = [t.value for t in tokens if t.kind == "NUMBER"]
        assert numbers == ["1", "2.5", "0.001", "1e3", "2.5E-2"]

    def test_operators(self):
        tokens = tokenize("a <= b >= c <> d != e || f")
        ops = [t.value for t in tokens if t.kind == "OP"]
        assert ops == ["<=", ">=", "<>", "!=", "||"]

    def test_punctuation(self):
        assert kinds("( ) , . * + - / % ;")[:-1] == [
            "LPAREN", "RPAREN", "COMMA", "DOT", "STAR", "PLUS", "MINUS",
            "SLASH", "PERCENT", "SEMICOLON",
        ]

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT 1 -- this is a comment\n, 2")
        numbers = [t.value for t in tokens if t.kind == "NUMBER"]
        assert numbers == ["1", "2"]

    def test_quoted_identifier(self):
        tokens = tokenize('SELECT "weird name" FROM `other`')
        idents = [t.value for t in tokens if t.kind == "IDENT"]
        assert idents == ["weird name", "other"]

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(ParseError):
            tokenize('SELECT "oops')

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @var")

    def test_position_tracking(self):
        tokens = tokenize("SELECT abc")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_matches_keyword_helper(self):
        token = Token("KEYWORD", "SELECT", 0)
        assert token.matches_keyword("SELECT", "INSERT")
        assert not token.matches_keyword("INSERT")

    def test_eof_always_present(self):
        assert tokenize("")[-1].kind == "EOF"
