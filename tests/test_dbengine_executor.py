"""Unit tests for the SQL executor and Database catalog."""

from __future__ import annotations

import pytest

from repro.dbengine import CatalogError, Database, ExecutionError


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE tokens (tid INTEGER, token TEXT)")
    database.insert_rows(
        "tokens",
        [
            (1, "AB"), (1, "BC"), (1, "AB"),
            (2, "AB"), (2, "CD"),
            (3, "XY"),
        ],
    )
    database.execute("CREATE TABLE query_tokens (token TEXT)")
    database.insert_rows("query_tokens", [("AB",), ("BC",)])
    return database


class TestCatalog:
    def test_create_and_list_tables(self, db):
        assert set(db.table_names()) == {"tokens", "query_tokens"}

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE tokens (x INT)")

    def test_create_if_not_exists(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS tokens (x INT)")
        assert db.table("tokens").column_names == ["tid", "token"]

    def test_drop_table(self, db):
        db.execute("DROP TABLE query_tokens")
        assert not db.has_table("query_tokens")

    def test_drop_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE nope")
        db.execute("DROP TABLE IF EXISTS nope")

    def test_unknown_table_in_query(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM missing")

    def test_query_requires_select(self, db):
        with pytest.raises(ExecutionError):
            db.query("DROP TABLE tokens")

    def test_insert_values_and_count(self, db):
        count = db.execute("INSERT INTO query_tokens (token) VALUES ('ZZ'), ('YY')")
        assert count == 2
        assert db.table("query_tokens").rows[-1] == ("YY",)

    def test_insert_wrong_arity(self, db):
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO tokens (tid, token) VALUES (1)")

    def test_delete_with_where(self, db):
        removed = db.execute("DELETE FROM tokens WHERE tid = 1")
        assert removed == 3
        assert len(db.table("tokens")) == 3

    def test_delete_all(self, db):
        removed = db.execute("DELETE FROM query_tokens")
        assert removed == 2
        assert len(db.table("query_tokens")) == 0

    def test_table_to_dicts(self, db):
        dicts = db.table("query_tokens").to_dicts()
        assert dicts[0] == {"token": "AB"}


class TestSelectBasics:
    def test_select_constant(self, db):
        assert db.query("SELECT 1 + 1 AS two").rows == [(2,)]

    def test_select_star(self, db):
        result = db.query("SELECT * FROM query_tokens")
        assert result.columns == ["token"]
        assert len(result) == 2

    def test_projection_and_alias(self, db):
        result = db.query("SELECT tid AS id, token FROM tokens WHERE tid = 3")
        assert result.columns == ["id", "token"]
        assert result.rows == [(3, "XY")]

    def test_where_filtering(self, db):
        result = db.query("SELECT token FROM tokens WHERE tid = 2")
        assert sorted(result.rows) == [("AB",), ("CD",)]

    def test_where_with_and_or(self, db):
        result = db.query(
            "SELECT tid FROM tokens WHERE token = 'AB' AND (tid = 1 OR tid = 2)"
        )
        assert sorted({row[0] for row in result.rows}) == [1, 2]

    def test_distinct(self, db):
        result = db.query("SELECT DISTINCT tid FROM tokens")
        assert sorted(result.rows) == [(1,), (2,), (3,)]

    def test_order_by_and_limit(self, db):
        result = db.query("SELECT DISTINCT tid FROM tokens ORDER BY tid DESC LIMIT 2")
        assert result.rows == [(3,), (2,)]

    def test_order_by_ordinal(self, db):
        result = db.query("SELECT DISTINCT tid FROM tokens ORDER BY 1")
        assert result.rows == [(1,), (2,), (3,)]

    def test_like(self, db):
        result = db.query("SELECT token FROM tokens WHERE token LIKE 'a%'")
        assert {row[0] for row in result.rows} == {"AB"}

    def test_in_list(self, db):
        result = db.query("SELECT DISTINCT tid FROM tokens WHERE token IN ('AB', 'XY')")
        assert sorted(result.rows) == [(1,), (2,), (3,)]

    def test_between(self, db):
        result = db.query("SELECT DISTINCT tid FROM tokens WHERE tid BETWEEN 2 AND 3")
        assert sorted(result.rows) == [(2,), (3,)]

    def test_case_expression(self, db):
        result = db.query(
            "SELECT DISTINCT tid, CASE WHEN tid = 1 THEN 'one' ELSE 'other' END AS label "
            "FROM tokens ORDER BY tid"
        )
        assert result.rows[0] == (1, "one")
        assert result.rows[1] == (2, "other")

    def test_is_null(self, db):
        db.execute("CREATE TABLE sparse (a INTEGER, b TEXT)")
        db.insert_rows("sparse", [(1, None), (2, "x")])
        assert db.query("SELECT a FROM sparse WHERE b IS NULL").rows == [(1,)]
        assert db.query("SELECT a FROM sparse WHERE b IS NOT NULL").rows == [(2,)]

    def test_division_by_zero_yields_null(self, db):
        assert db.query("SELECT 1 / 0 AS x").rows == [(None,)]

    def test_string_concatenation(self, db):
        assert db.query("SELECT 'a' || 'b' || 'c' AS s").rows == [("abc",)]

    def test_ambiguous_column_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query(
                "SELECT token FROM tokens T1, query_tokens T2 WHERE T1.token = T2.token"
            )

    def test_unknown_column_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT nope FROM tokens")


class TestJoinsAndSubqueries:
    def test_comma_join_with_equi_condition(self, db):
        result = db.query(
            "SELECT T1.tid FROM tokens T1, query_tokens T2 WHERE T1.token = T2.token"
        )
        # tid 1 has AB twice and BC once; tid 2 has AB once.
        assert sorted(row[0] for row in result.rows) == [1, 1, 1, 2]

    def test_explicit_inner_join(self, db):
        result = db.query(
            "SELECT T1.tid FROM tokens T1 INNER JOIN query_tokens T2 ON T1.token = T2.token"
        )
        assert sorted(row[0] for row in result.rows) == [1, 1, 1, 2]

    def test_left_join_pads_with_null(self, db):
        result = db.query(
            "SELECT T1.tid, T2.token FROM tokens T1 "
            "LEFT JOIN query_tokens T2 ON T1.token = T2.token "
            "WHERE T1.tid = 3"
        )
        assert result.rows == [(3, None)]

    def test_non_equi_join_condition(self, db):
        result = db.query(
            "SELECT COUNT(*) FROM tokens T1 INNER JOIN query_tokens T2 ON T1.token <> T2.token"
        )
        # 6 base rows x 2 query rows = 12 pairs, minus the 4 equal pairs.
        assert result.rows == [(8,)]

    def test_subquery_in_from(self, db):
        result = db.query(
            "SELECT S.tid, S.cnt FROM "
            "(SELECT tid, COUNT(*) AS cnt FROM tokens GROUP BY tid) S "
            "WHERE S.cnt >= 2 ORDER BY S.tid"
        )
        assert result.rows == [(1, 3), (2, 2)]

    def test_scalar_subquery(self, db):
        result = db.query("SELECT (SELECT COUNT(*) FROM query_tokens) AS n")
        assert result.rows == [(2,)]

    def test_in_subquery(self, db):
        result = db.query(
            "SELECT DISTINCT tid FROM tokens "
            "WHERE token IN (SELECT token FROM query_tokens) ORDER BY tid"
        )
        assert result.rows == [(1,), (2,)]

    def test_not_in_subquery(self, db):
        result = db.query(
            "SELECT DISTINCT tid FROM tokens "
            "WHERE token NOT IN (SELECT token FROM query_tokens) ORDER BY tid"
        )
        assert result.rows == [(2,), (3,)]

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE names (tid INTEGER, name TEXT)")
        db.insert_rows("names", [(1, "one"), (2, "two"), (3, "three")])
        result = db.query(
            "SELECT N.name, COUNT(*) FROM tokens T, query_tokens Q, names N "
            "WHERE T.token = Q.token AND T.tid = N.tid "
            "GROUP BY N.name ORDER BY N.name"
        )
        assert result.rows == [("one", 3), ("two", 1)]


class TestAggregation:
    def test_count_star_group_by(self, db):
        result = db.query("SELECT tid, COUNT(*) FROM tokens GROUP BY tid ORDER BY tid")
        assert result.rows == [(1, 3), (2, 2), (3, 1)]

    def test_count_distinct(self, db):
        result = db.query(
            "SELECT tid, COUNT(DISTINCT token) FROM tokens GROUP BY tid ORDER BY tid"
        )
        assert result.rows == [(1, 2), (2, 2), (3, 1)]

    def test_sum_avg_min_max(self, db):
        db.execute("CREATE TABLE numbers (grp TEXT, value REAL)")
        db.insert_rows("numbers", [("a", 1.0), ("a", 3.0), ("b", 5.0)])
        result = db.query(
            "SELECT grp, SUM(value), AVG(value), MIN(value), MAX(value) "
            "FROM numbers GROUP BY grp ORDER BY grp"
        )
        assert result.rows == [("a", 4.0, 2.0, 1.0, 3.0), ("b", 5.0, 5.0, 5.0, 5.0)]

    def test_aggregate_without_group_by(self, db):
        assert db.query("SELECT COUNT(*) FROM tokens").rows == [(6,)]

    def test_aggregate_over_empty_input(self, db):
        assert db.query("SELECT COUNT(*) FROM tokens WHERE tid = 99").rows == [(0,)]
        assert db.query("SELECT SUM(tid) FROM tokens WHERE tid = 99").rows == [(None,)]

    def test_having(self, db):
        result = db.query(
            "SELECT tid, COUNT(*) FROM tokens GROUP BY tid HAVING COUNT(*) >= 2 ORDER BY tid"
        )
        assert result.rows == [(1, 3), (2, 2)]

    def test_having_with_expression(self, db):
        result = db.query(
            "SELECT tid FROM tokens GROUP BY tid HAVING COUNT(*) * 2 > 5"
        )
        assert result.rows == [(1,)]

    def test_expression_around_aggregate(self, db):
        result = db.query(
            "SELECT tid, COUNT(*) * 1.0 / 2 AS half FROM tokens GROUP BY tid ORDER BY tid"
        )
        assert result.rows[0] == (1, 1.5)

    def test_aggregate_of_expression(self, db):
        db.execute("CREATE TABLE pairs (x INTEGER, y INTEGER)")
        db.insert_rows("pairs", [(1, 2), (3, 4)])
        assert db.query("SELECT SUM(x * y) FROM pairs").rows == [(14,)]

    def test_aggregate_outside_group_context_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT tid FROM tokens WHERE COUNT(*) > 1")

    def test_scalar_functions_inside_aggregates(self, db):
        db.execute("CREATE TABLE values_table (v REAL)")
        db.insert_rows("values_table", [(1.0,), (2.718281828,)])
        result = db.query("SELECT SUM(LOG(v)) FROM values_table")
        assert result.rows[0][0] == pytest.approx(1.0, abs=1e-6)


class TestSetOperations:
    def test_union_all_keeps_duplicates(self, db):
        result = db.query(
            "SELECT token FROM query_tokens UNION ALL SELECT token FROM query_tokens"
        )
        assert len(result.rows) == 4

    def test_union_removes_duplicates(self, db):
        result = db.query(
            "SELECT token FROM query_tokens UNION SELECT token FROM query_tokens"
        )
        assert len(result.rows) == 2

    def test_union_arity_mismatch(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT tid, token FROM tokens UNION SELECT token FROM query_tokens")

    def test_insert_from_union(self, db):
        db.execute("CREATE TABLE all_tokens (token TEXT)")
        db.execute(
            "INSERT INTO all_tokens (token) "
            "SELECT token FROM tokens UNION SELECT token FROM query_tokens"
        )
        assert len(db.table("all_tokens")) == 4  # AB, BC, CD, XY


class TestFunctionsAndUdfs:
    def test_builtin_math(self, db):
        row = db.query("SELECT LOG(EXP(1.0)), POWER(2, 10), SQRT(16), ABS(-3)").rows[0]
        assert row[0] == pytest.approx(1.0)
        assert row[1] == 1024
        assert row[2] == 4
        assert row[3] == 3

    def test_builtin_strings(self, db):
        row = db.query(
            "SELECT UPPER('ab'), LOWER('AB'), LENGTH('abc'), SUBSTR('hello', 2, 3), "
            "REPLACE('a b', ' ', '$'), REVERSE('abc')"
        ).rows[0]
        assert row == ("AB", "ab", 3, "ell", "a$b", "cba")

    def test_null_propagation(self, db):
        assert db.query("SELECT LOG(NULL)").rows == [(None,)]
        assert db.query("SELECT COALESCE(NULL, 5)").rows == [(5,)]
        assert db.query("SELECT IFNULL(NULL, 'x')").rows == [("x",)]

    def test_unknown_function(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT NOSUCHFUNC(1)")

    def test_udf_registration(self, db):
        db.register_function("TRIPLE", lambda x: 3 * x)
        assert db.query("SELECT TRIPLE(tid) FROM tokens WHERE token = 'XY'").rows == [(9,)]

    def test_execute_script(self, db):
        results = db.execute_script(
            "CREATE TABLE s (a INTEGER); INSERT INTO s (a) VALUES (1); SELECT a FROM s"
        )
        assert results[1] == 1
        assert results[2].rows == [(1,)]
