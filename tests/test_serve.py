"""Tests of the serving layer: protocol, admission, batching, HTTP, drain.

The load-bearing invariant throughout is *bit-identity*: a request served
through admission control and micro-batching must return exactly the
``Match`` list a direct call on a :class:`SimilarityEngine` returns --
same tids, same float scores, same strings, same order -- under any
interleaving of concurrent clients.  The hypothesis test at the bottom
drives that across realizations and shard counts.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import SimilarityEngine
from repro.obs.clock import perf_clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Observability, Tracer
from repro.serve import (
    AdmissionController,
    AdmissionTimeout,
    MicroBatcher,
    ProtocolError,
    RejectedError,
    ServeClient,
    ServeError,
    ServeServer,
    SimilarityService,
    corpus_id_for,
    parse_query_request,
)
from repro.serve.protocol import match_to_dict


ROWS = [
    "Morgan Stanley Group Inc.",
    "Goldman Sachs Group",
    "AT&T Incorporated",
    "IBM Incorporated",
    "AT&T Inc.",
    "Beijing Hotel",
    "Beijing Labs",
    "Hotel Beijing",
    "Stanley Morgan Group Incorporated",
    "Silicon Valley Group, Inc.",
    "Pacific Gas and Electric Company",
    "Granite Construction Incorporated",
]


def fresh_obs() -> Observability:
    return Observability(metrics=MetricsRegistry())


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_parse_minimal_top_k(self):
        request = parse_query_request(
            {"corpus_id": "abc", "text": "AT&T", "op": "top_k", "k": 3}
        )
        assert request.corpus_id == "abc"
        assert request.op == "top_k"
        assert request.k == 3
        assert request.predicate == "bm25"

    def test_default_timeout_applies(self):
        request = parse_query_request(
            {"corpus_id": "abc", "text": "x", "op": "rank"}, default_timeout=12.5
        )
        assert request.timeout == 12.5

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {},
            {"corpus_id": "a"},
            {"corpus_id": "a", "text": "x", "op": "explode"},
            {"corpus_id": "a", "text": "x", "op": "top_k"},  # missing k
            {"corpus_id": "a", "text": "x", "op": "top_k", "k": -1},
            {"corpus_id": "a", "text": "x", "op": "top_k", "k": True},
            {"corpus_id": "a", "text": "x", "op": "select"},  # missing threshold
            {"corpus_id": "a", "text": "x", "op": "rank", "num_shards": 0},
            {"corpus_id": "a", "text": "x", "op": "rank", "timeout": -1},
            {"corpus_id": "a", "text": "x", "op": "rank", "bogus": 1},
        ],
    )
    def test_rejects_bad_payloads(self, payload):
        with pytest.raises(ProtocolError) as excinfo:
            parse_query_request(payload)
        assert excinfo.value.status == 400

    def test_batch_key_separates_plans(self):
        base = {"corpus_id": "a", "text": "x", "op": "top_k", "k": 3}
        same_plan_other_text = dict(base, text="y")
        other_k = dict(base, k=4)
        other_predicate = dict(base, predicate="jaccard")
        key = parse_query_request(base).batch_key()
        assert parse_query_request(same_plan_other_text).batch_key() == key
        assert parse_query_request(other_k).batch_key() != key
        assert parse_query_request(other_predicate).batch_key() != key

    def test_corpus_id_is_content_deterministic(self):
        assert corpus_id_for(ROWS) == corpus_id_for(list(ROWS))
        assert corpus_id_for(ROWS) != corpus_id_for(ROWS[:-1])
        # Boundary-shift must change the id (the separator matters).
        assert corpus_id_for(["ab", "c"]) != corpus_id_for(["a", "bc"])


# ---------------------------------------------------------------------------
# admission
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_concurrency_is_capped(self):
        async def run():
            controller = AdmissionController(
                max_concurrency=2, max_queue=16, obs=fresh_obs()
            )
            active = 0
            high_water = 0

            async def worker():
                nonlocal active, high_water
                async with controller.admit():
                    active += 1
                    high_water = max(high_water, active)
                    await asyncio.sleep(0.005)
                    active -= 1

            await asyncio.gather(*[worker() for _ in range(8)])
            return high_water, controller.obs.metrics

        high_water, metrics = asyncio.run(run())
        assert high_water == 2
        assert metrics.gauge("serve.active_requests").high_water == 2
        assert metrics.gauge_value("serve.active_requests") == 0
        assert metrics.gauge_value("serve.queue_depth") == 0

    def test_full_queue_rejects_immediately(self):
        async def run():
            obs = fresh_obs()
            controller = AdmissionController(max_concurrency=1, max_queue=1, obs=obs)
            release = asyncio.Event()

            async def holder():
                async with controller.admit():
                    await release.wait()

            async def waiter():
                async with controller.admit():
                    pass

            holding = asyncio.create_task(holder())
            await asyncio.sleep(0.005)
            waiting = asyncio.create_task(waiter())
            await asyncio.sleep(0.005)
            started = perf_clock()
            with pytest.raises(RejectedError):
                async with controller.admit():
                    pass
            elapsed = perf_clock() - started
            release.set()
            await asyncio.gather(holding, waiting)
            return elapsed, obs.metrics

        elapsed, metrics = asyncio.run(run())
        assert elapsed < 0.05  # rejected without waiting
        assert metrics.value("serve.rejections_total") == 1

    def test_queued_request_times_out(self):
        async def run():
            obs = fresh_obs()
            controller = AdmissionController(max_concurrency=1, max_queue=4, obs=obs)
            release = asyncio.Event()

            async def holder():
                async with controller.admit():
                    await release.wait()

            holding = asyncio.create_task(holder())
            await asyncio.sleep(0.005)
            with pytest.raises(AdmissionTimeout):
                async with controller.admit(timeout=0.02):
                    pass
            release.set()
            await holding
            return obs.metrics

        metrics = asyncio.run(run())
        assert metrics.value("serve.timeouts_total") == 1
        assert metrics.gauge_value("serve.queue_depth") == 0


# ---------------------------------------------------------------------------
# micro-batcher
# ---------------------------------------------------------------------------


class TestMicroBatcher:
    def test_coalesces_within_window(self):
        calls = []

        async def runner(key, requests):
            calls.append((key, list(requests)))
            return [value * 2 for value in requests]

        async def run():
            batcher = MicroBatcher(runner, window=0.02, max_batch=16, obs=fresh_obs())
            return await asyncio.gather(*[batcher.submit("k", i) for i in range(5)])

        assert asyncio.run(run()) == [0, 2, 4, 6, 8]
        assert len(calls) == 1
        assert calls[0][1] == [0, 1, 2, 3, 4]

    def test_distinct_keys_do_not_coalesce(self):
        calls = []

        async def runner(key, requests):
            calls.append(key)
            return list(requests)

        async def run():
            batcher = MicroBatcher(runner, window=0.02, obs=fresh_obs())
            return await asyncio.gather(
                batcher.submit("a", 1), batcher.submit("b", 2)
            )

        assert asyncio.run(run()) == [1, 2]
        assert sorted(calls) == ["a", "b"]

    def test_max_batch_flushes_early(self):
        async def runner(key, requests):
            return list(requests)

        async def run():
            # Window long enough that only the early flush can finish fast.
            batcher = MicroBatcher(runner, window=2.0, max_batch=3, obs=fresh_obs())
            started = perf_clock()
            results = await asyncio.gather(*[batcher.submit("k", i) for i in range(3)])
            return results, perf_clock() - started

        results, elapsed = asyncio.run(run())
        assert results == [0, 1, 2]
        assert elapsed < 1.0

    def test_runner_failure_reaches_every_waiter(self):
        async def runner(key, requests):
            raise ValueError("boom")

        async def run():
            batcher = MicroBatcher(runner, window=0.005, obs=fresh_obs())
            return await asyncio.gather(
                *[batcher.submit("k", i) for i in range(3)], return_exceptions=True
            )

        results = asyncio.run(run())
        assert len(results) == 3
        assert all(isinstance(result, ValueError) for result in results)

    def test_result_count_mismatch_is_an_error(self):
        async def runner(key, requests):
            return [1]  # wrong arity for a batch of 2

        async def run():
            batcher = MicroBatcher(runner, window=0.005, obs=fresh_obs())
            return await asyncio.gather(
                batcher.submit("k", 1), batcher.submit("k", 2), return_exceptions=True
            )

        results = asyncio.run(run())
        assert all(isinstance(result, RuntimeError) for result in results)

    def test_flush_all_resolves_pending(self):
        async def runner(key, requests):
            return list(requests)

        async def run():
            batcher = MicroBatcher(runner, window=30.0, obs=fresh_obs())
            pending = asyncio.create_task(batcher.submit("k", 7))
            await asyncio.sleep(0.005)
            assert batcher.pending == 1
            await batcher.flush_all()
            return await asyncio.wait_for(pending, timeout=1.0)

        assert asyncio.run(run()) == 7

    def test_batch_metrics_published(self):
        async def runner(key, requests):
            return list(requests)

        obs = fresh_obs()

        async def run():
            batcher = MicroBatcher(runner, window=0.02, obs=obs)
            await asyncio.gather(*[batcher.submit("k", i) for i in range(4)])

        asyncio.run(run())
        assert obs.metrics.value("serve.batches_total") == 1
        assert obs.metrics.value("serve.batched_queries_total") == 4
        histogram = obs.metrics.histogram("serve.batch_size")
        assert histogram.count == 1


# ---------------------------------------------------------------------------
# service pipeline
# ---------------------------------------------------------------------------


def make_service(**kwargs) -> SimilarityService:
    kwargs.setdefault("batch_window", 0.002)
    kwargs.setdefault("obs", fresh_obs())
    return SimilarityService(**kwargs)


class TestService:
    def test_register_is_idempotent(self):
        service = make_service()
        first = service.register_corpus(ROWS)
        second = service.register_corpus(list(ROWS))
        assert first[0] == second[0]
        assert first[2] is True and second[2] is False

    def test_served_results_match_direct_engine(self):
        service = make_service()
        corpus_id, _, _ = service.register_corpus(ROWS)
        payload = {"corpus_id": corpus_id, "text": "Morgn Stanley", "op": "top_k", "k": 4}
        envelope = asyncio.run(service.handle(payload))
        assert envelope["status"] == 200
        direct = (
            SimilarityEngine().from_strings(ROWS).predicate("bm25").top_k(
                "Morgn Stanley", 4
            )
        )
        assert envelope["matches"] == [match_to_dict(match) for match in direct]
        service.close()

    def test_unknown_corpus_is_404(self):
        service = make_service()
        envelope = asyncio.run(
            service.handle({"corpus_id": "nope", "text": "x", "op": "rank"})
        )
        assert envelope["status"] == 404
        assert envelope["error"] == "unknown_corpus"

    def test_bad_payload_is_400(self):
        service = make_service()
        envelope = asyncio.run(service.handle({"text": "x"}))
        assert envelope["status"] == 400
        assert envelope["kind"] == "error"

    def test_concurrent_same_plan_requests_coalesce(self):
        service = make_service(batch_window=0.01, max_concurrency=8, max_queue=32)
        corpus_id, _, _ = service.register_corpus(ROWS)
        texts = ["Morgn Stanley", "AT&T", "Beijing", "Goldman", "IBM Corp"]

        async def run():
            payloads = [
                {"corpus_id": corpus_id, "text": text, "op": "top_k", "k": 3}
                for text in texts
            ]
            return await asyncio.gather(*[service.handle(p) for p in payloads])

        envelopes = asyncio.run(run())
        assert all(envelope["status"] == 200 for envelope in envelopes)
        # All five shared one bucket: one batch execution of size 5.
        metrics = service.obs.metrics
        assert metrics.value("serve.batches_total") == 1
        assert envelopes[0]["batch_size"] == len(texts)
        # Batched answers are bit-identical to sequential direct calls.
        query = SimilarityEngine().from_strings(ROWS).predicate("bm25")
        for text, envelope in zip(texts, envelopes):
            assert envelope["matches"] == [
                match_to_dict(match) for match in query.top_k(text, 3)
            ]
        service.close()

    def test_request_span_tree(self):
        obs = Observability(tracer=Tracer(), metrics=MetricsRegistry())
        service = make_service(obs=obs)
        corpus_id, _, _ = service.register_corpus(ROWS)
        envelope = asyncio.run(
            service.handle(
                {"corpus_id": corpus_id, "text": "AT&T", "op": "top_k", "k": 2}
            )
        )
        assert envelope["status"] == 200
        root = obs.tracer.last_root
        assert root is not None and root.name == "serve.request"
        assert root.find("serve.admission") is not None
        batch = root.find("serve.batch")
        assert batch is not None
        assert batch.find("engine.query") is not None
        assert batch.find("execute.direct") is not None
        service.close()

    def test_lru_eviction_clears_engine_state(self):
        service = make_service(max_corpora=1)
        first_id, _, _ = service.register_corpus(ROWS)
        first_engine = service.corpus(first_id).engine
        asyncio.run(
            service.handle(
                {"corpus_id": first_id, "text": "AT&T", "op": "top_k", "k": 1}
            )
        )
        assert first_engine.cache_size == 1
        second_id, _, _ = service.register_corpus(ROWS[:4])
        assert service.corpus_ids == [second_id]
        assert first_engine.cache_size == 0  # evicted corpus released its state
        envelope = asyncio.run(
            service.handle(
                {"corpus_id": first_id, "text": "AT&T", "op": "top_k", "k": 1}
            )
        )
        assert envelope["status"] == 404
        assert service.obs.metrics.value("serve.corpora_evicted_total") == 1
        service.close()

    def test_deadline_expiry_is_504(self):
        async def run():
            service = make_service(max_concurrency=1, max_queue=4)
            corpus_id, _, _ = service.register_corpus(ROWS)
            release = asyncio.Event()

            async def holder():
                async with service.admission.admit():
                    await release.wait()

            holding = asyncio.create_task(holder())
            await asyncio.sleep(0.005)
            envelope = await service.handle(
                {
                    "corpus_id": corpus_id,
                    "text": "AT&T",
                    "op": "top_k",
                    "k": 1,
                    "timeout": 0.03,
                }
            )
            release.set()
            await holding
            service.close()
            return envelope

        envelope = asyncio.run(run())
        assert envelope["status"] == 504
        assert envelope["error"] == "timeout"

    def test_overload_is_429(self):
        async def run():
            service = make_service(max_concurrency=1, max_queue=0)
            corpus_id, _, _ = service.register_corpus(ROWS)
            release = asyncio.Event()

            async def holder():
                async with service.admission.admit():
                    await release.wait()

            holding = asyncio.create_task(holder())
            await asyncio.sleep(0.005)
            envelope = await service.handle(
                {"corpus_id": corpus_id, "text": "AT&T", "op": "top_k", "k": 1}
            )
            release.set()
            await holding
            service.close()
            return envelope

        envelope = asyncio.run(run())
        assert envelope["status"] == 429
        assert envelope["error"] == "rejected"

    def test_draining_service_answers_503(self):
        service = make_service()
        corpus_id, _, _ = service.register_corpus(ROWS)
        asyncio.run(service.drain())
        envelope = asyncio.run(
            service.handle(
                {"corpus_id": corpus_id, "text": "AT&T", "op": "top_k", "k": 1}
            )
        )
        assert envelope["status"] == 503
        assert envelope["error"] == "draining"
        service.close()


# ---------------------------------------------------------------------------
# HTTP server end-to-end
# ---------------------------------------------------------------------------


class _ServerThread:
    """Runs a ServeServer on a private event loop in a daemon thread."""

    def __init__(self, service: SimilarityService):
        self.service = service
        self.host: str = ""
        self.port: int = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: ServeServer | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        assert self._ready.wait(timeout=10), "server failed to start"
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._server is not None:
            self._loop.call_soon_threadsafe(self._server.request_stop)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "server thread failed to stop"

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = ServeServer(self.service, port=0)
        self.host, self.port = await self._server.start()
        self._ready.set()
        await self._server.serve_until_stopped()


class TestHTTPServer:
    def test_health_metrics_and_routing(self):
        with _ServerThread(make_service()) as server:
            client = ServeClient(server.host, server.port)
            health = client.health()
            assert health["kind"] == "health" and health["draining"] is False
            snapshot = client.metrics()
            assert snapshot["schema"] == "repro.obs/1"
            assert snapshot["kind"] == "metrics"
            with pytest.raises(ServeError) as excinfo:
                client.request("GET", "/nope")
            assert excinfo.value.status == 404
            with pytest.raises(ServeError) as excinfo:
                client.request("GET", "/query")
            assert excinfo.value.status == 405
            client.close()

    def test_rejects_invalid_json_body(self):
        with _ServerThread(make_service()) as server:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=10
            )
            connection.request(
                "POST", "/query", b"{not json", {"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            envelope = json.loads(response.read())
            assert response.status == 400
            assert envelope["error"] == "bad_request"
            connection.close()

    def test_served_queries_bit_identical_over_http(self):
        engine = SimilarityEngine()
        with _ServerThread(make_service()) as server:
            client = ServeClient(server.host, server.port)
            corpus_id = client.register_corpus(ROWS)
            for predicate in ("bm25", "jaccard", "cosine"):
                for realization in ("direct", "declarative"):
                    served = client.top_k(
                        corpus_id,
                        "Morgn Stanley",
                        k=5,
                        predicate=predicate,
                        realization=realization,
                    )
                    direct = (
                        engine.from_strings(ROWS)
                        .predicate(predicate)
                        .realization(realization)
                        .top_k("Morgn Stanley", 5)
                    )
                    assert served == direct, (predicate, realization)
            client.close()

    def test_eight_concurrent_clients(self):
        texts = ["Morgn Stanley", "AT&T", "Beijing Hotel", "Goldman", "IBM"]
        expected = {}
        query = SimilarityEngine().from_strings(ROWS).predicate("bm25")
        for text in texts:
            expected[text] = query.top_k(text, 3)
        failures: list = []
        with _ServerThread(
            make_service(max_concurrency=4, max_queue=64, batch_window=0.002)
        ) as server:
            seed_client = ServeClient(server.host, server.port)
            corpus_id = seed_client.register_corpus(ROWS)
            seed_client.close()

            def client_worker(worker_id: int) -> None:
                try:
                    client = ServeClient(server.host, server.port)
                    for round_index in range(3):
                        text = texts[(worker_id + round_index) % len(texts)]
                        served = client.top_k(corpus_id, text, k=3)
                        if served != expected[text]:
                            failures.append((worker_id, text))
                    client.close()
                except Exception as exc:  # pragma: no cover - failure reporting
                    failures.append((worker_id, repr(exc)))

            threads = [
                threading.Thread(target=client_worker, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert failures == []


# ---------------------------------------------------------------------------
# graceful shutdown (subprocess + SIGTERM)
# ---------------------------------------------------------------------------


class TestGracefulShutdown:
    def test_sigterm_drains_without_dropping_requests(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--batch-window",
                "0.002",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert line.startswith("listening on"), line
            port = int(line.rsplit(":", 1)[1])
            connection = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
            connection.request(
                "POST",
                "/corpora",
                json.dumps({"strings": ROWS}),
                {"Content-Type": "application/json"},
            )
            corpus_id = json.loads(connection.getresponse().read())["corpus_id"]
            connection.close()

            responses: list = []

            def fire_query(text: str) -> None:
                worker = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
                worker.request(
                    "POST",
                    "/query",
                    json.dumps(
                        {"corpus_id": corpus_id, "text": text, "op": "top_k", "k": 3}
                    ),
                    {"Content-Type": "application/json"},
                )
                responses.append(json.loads(worker.getresponse().read()))
                worker.close()

            threads = [
                threading.Thread(target=fire_query, args=(text,))
                for text in ("Morgn Stanley", "AT&T", "Beijing")
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.01)  # requests in flight
            process.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=30)
            stdout, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        # Every mid-flight request got a full, successful response.
        assert len(responses) == 3
        assert all(envelope["status"] == 200 for envelope in responses)
        assert all(envelope["matches"] for envelope in responses)
        assert process.returncode == 0
        assert "drained and stopped" in stdout
        assert "Traceback" not in stderr


# ---------------------------------------------------------------------------
# served-vs-sequential equivalence (hypothesis)
# ---------------------------------------------------------------------------


_WORDS = sorted({word for row in ROWS for word in row.replace(",", " ").split()})

#: One shared engine for the sequential (expected) side, so fitted state is
#: cached across hypothesis examples.
_EXPECTED_ENGINE = SimilarityEngine()


def _expected_top_k(text: str, realization: str, num_shards: int):
    query = _EXPECTED_ENGINE.from_strings(ROWS).predicate("bm25").realization(
        realization
    )
    if num_shards > 1:
        query = query.shards(num_shards)
    return query.top_k(text, 5)


class TestServedEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        queries=st.lists(
            st.lists(st.sampled_from(_WORDS), min_size=1, max_size=4).map(" ".join),
            min_size=1,
            max_size=6,
        ),
        num_shards=st.sampled_from([1, 2, 7]),
        realization=st.sampled_from(["direct", "declarative"]),
    )
    def test_concurrent_serving_is_bit_identical(
        self, queries, num_shards, realization
    ):
        expected = [
            _expected_top_k(text, realization, num_shards) for text in queries
        ]

        async def run():
            service = make_service(max_concurrency=4, max_queue=64)
            corpus_id, _, _ = service.register_corpus(ROWS)
            payloads = [
                {
                    "corpus_id": corpus_id,
                    "text": text,
                    "op": "top_k",
                    "k": 5,
                    "realization": realization,
                    "num_shards": num_shards,
                }
                for text in queries
            ]
            envelopes = await asyncio.gather(
                *[service.handle(payload) for payload in payloads]
            )
            service.close()
            return envelopes

        envelopes = asyncio.run(run())
        for text, envelope, matches in zip(queries, envelopes, expected):
            assert envelope["status"] == 200, envelope
            assert envelope["matches"] == [
                match_to_dict(match) for match in matches
            ], (text, realization, num_shards)
