"""Tests for the top-k / threshold-aware query fast paths.

Three families of guarantees:

* **Exactness** -- property-based equivalence: for the monotone-sum
  predicates (WeightedMatch, Cosine, BM25), ``top_k`` with max-score pruning
  returns *exactly* the same ``(tid, score)`` lists as the unpruned
  ``rank(limit=k)``, across random corpora, k values, and with/without
  blockers and candidate restrictions.
* **Satellite fixes** -- ``select`` filters before sorting but returns the
  same results; ``score(query, tid)`` single-tuple paths agree with the
  whole-corpus ``_scores`` for every direct predicate.
* **Surfacing** -- ``pruning_stats`` exposes the work counters and
  ``engine.explain`` / ``plan`` report the chosen fast path.
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import make_blocker
from repro.core.predicates.registry import make_predicate
from repro.core.topk import PruningStats, Term, maxscore_top_k
from repro.engine import SimilarityEngine

MONOTONE = ["weighted_match", "cosine", "bm25"]

ALL_DIRECT = [
    "intersect",
    "jaccard",
    "weighted_match",
    "weighted_jaccard",
    "cosine",
    "bm25",
    "lm",
    "hmm",
    "edit_distance",
    "ges",
    "ges_jaccard",
    "ges_apx",
    "soft_tfidf",
]

CORPUS = [
    "AT&T Corporation",
    "ATT Corp",
    "A T and T Corporation",
    "International Business Machines",
    "Intl Business Machines Corp",
    "IBM Corporation",
    "Morgan Stanley Inc",
    "Morgn Stanley Incorporated",
    "Goldman Sachs Group",
    "Goldmann Sachs Grp",
    "Deutsche Bank AG",
    "Deutsch Bank",
]

_words = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "corp", "inc", "intl", "ab", "ba", "aa"]
)
_strings = st.lists(_words, min_size=1, max_size=4).map(" ".join)
_corpora = st.lists(_strings, min_size=2, max_size=24)


def _pairs(scored):
    return [(st_.tid, st_.score) for st_ in scored]


class TestMaxScoreEquivalence:
    """Property: pruned top_k == unpruned rank(limit=k), bit for bit."""

    @pytest.mark.parametrize("name", MONOTONE)
    @given(corpus=_corpora, query=_strings, k=st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_topk_equals_rank(self, name, corpus, query, k):
        predicate = make_predicate(name).fit(corpus)
        assert _pairs(predicate.top_k(query, k)) == _pairs(
            predicate.rank(query, limit=k)
        )

    @pytest.mark.parametrize("name", MONOTONE)
    @given(corpus=_corpora, query=_strings, k=st.integers(1, 10), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_topk_equals_rank_under_restriction(self, name, corpus, query, k, data):
        predicate = make_predicate(name).fit(corpus)
        allowed = data.draw(
            st.sets(st.integers(0, len(corpus) - 1), max_size=len(corpus))
        )
        with predicate.restrict_candidates(allowed):
            assert _pairs(predicate.top_k(query, k)) == _pairs(
                predicate.rank(query, limit=k)
            )

    @pytest.mark.parametrize("name", MONOTONE)
    @given(corpus=_corpora, query=_strings, k=st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_topk_equals_rank_under_blocker(self, name, corpus, query, k):
        predicate = make_predicate(name).fit(corpus)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            predicate.set_blocker(make_blocker("lsh", lsh_bands=4, lsh_rows=2))
        assert _pairs(predicate.top_k(query, k)) == _pairs(
            predicate.rank(query, limit=k)
        )

    @pytest.mark.parametrize("name", MONOTONE)
    def test_topk_exact_on_company_corpus(self, name):
        predicate = make_predicate(name).fit(CORPUS * 20)
        for query in ("Morgn Stanley", "IBM Corp", "Goldman", "zzz"):
            for k in (1, 3, 10, 100, 1000):
                assert _pairs(predicate.top_k(query, k)) == _pairs(
                    predicate.rank(query, limit=k)
                )


class TestSelectFilterFirst:
    """select() must filter before sorting yet return identical results."""

    @pytest.mark.parametrize(
        "name", ["jaccard", "weighted_match", "cosine", "bm25", "lm", "hmm"]
    )
    @given(corpus=_corpora, query=_strings, threshold=st.floats(0.0, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_select_equals_filtered_rank(self, name, corpus, query, threshold):
        predicate = make_predicate(name).fit(corpus)
        expected = [
            scored for scored in predicate.rank(query) if scored.score >= threshold
        ]
        assert _pairs(predicate.select(query, threshold)) == _pairs(expected)

    def test_select_counts_all_candidates(self):
        predicate = make_predicate("bm25").fit(CORPUS)
        predicate.select("Morgan Stanley", 1000.0)
        ranked = predicate.rank("Morgan Stanley")
        assert predicate.last_num_candidates == len(ranked)


class TestSingleTupleScore:
    """score(query, tid) answers from one tuple's state, identically."""

    @pytest.mark.parametrize("name", ALL_DIRECT)
    def test_score_matches_full_scores(self, name):
        predicate = make_predicate(name).fit(CORPUS)
        for query in ("Morgan Staney Inc", "IBM", "AT&T Corp", ""):
            scores = predicate._scores(query)
            for tid in range(len(CORPUS)):
                assert predicate.score(query, tid) == scores.get(tid, 0.0), (
                    name,
                    query,
                    tid,
                )

    @pytest.mark.parametrize("name", ALL_DIRECT)
    def test_score_out_of_range_is_zero(self, name):
        predicate = make_predicate(name).fit(CORPUS)
        assert predicate.score("Morgan", -1) == 0.0
        assert predicate.score("Morgan", len(CORPUS) + 5) == 0.0

    def test_score_respects_restriction_fallback(self):
        predicate = make_predicate("bm25").fit(CORPUS)
        unrestricted = predicate.score("Morgan Stanley", 6)
        assert unrestricted > 0.0
        with predicate.restrict_candidates({0}):
            # Restriction semantics are defined by the full path; the
            # single-tuple fast path must not bypass them.
            assert predicate.score("Morgan Stanley", 6) == pytest.approx(
                predicate._scores("Morgan Stanley").get(6, 0.0)
            )


class TestPruningStats:
    def test_stats_populated_for_monotone_predicates(self):
        predicate = make_predicate("bm25").fit(CORPUS * 50)
        predicate.top_k("Morgan Stanley Inc", 5)
        stats = predicate.pruning_stats
        assert isinstance(stats, PruningStats)
        assert stats.postings_opened + stats.postings_skipped == stats.postings_total
        assert stats.candidates_rescored <= stats.candidates_scored
        assert predicate.last_num_candidates == stats.candidates_scored
        assert "posting lists opened" in stats.describe()

    def test_stats_show_skipped_postings_on_skewed_corpus(self):
        predicate = make_predicate("bm25").fit(CORPUS * 100)
        predicate.top_k("Morgan Stanley Inc", 3)
        assert predicate.pruning_stats.pruned
        assert predicate.pruning_stats.postings_skipped > 0

    def test_stats_reset_on_fallback(self):
        predicate = make_predicate("lm").fit(CORPUS)
        predicate.top_k("Morgan", 3)
        assert predicate.pruning_stats is None

    def test_maxscore_topk_empty_terms(self):
        result, stats = maxscore_top_k(5, [], lambda tids: {})
        assert result == []
        assert stats.candidates_scored == 0

    def test_maxscore_topk_k_zero_skips_everything(self):
        term = Term("ab", 1.0, [(0, 1.0), (1, 2.0)], 2.0, 1.0)
        result, stats = maxscore_top_k(0, [term], lambda tids: {})
        assert result == []
        assert stats.postings_skipped == 2


class TestEngineIntegration:
    def test_engine_topk_matches_rank(self):
        engine = SimilarityEngine()
        query = engine.from_strings(CORPUS).predicate("bm25")
        assert [
            (m.tid, m.score) for m in query.top_k("Morgn Stanley", 5)
        ] == [(m.tid, m.score) for m in query.rank("Morgn Stanley", limit=5)]

    def test_plan_reports_maxscore_fast_path(self):
        engine = SimilarityEngine()
        plan = engine.from_strings(CORPUS).predicate("bm25").plan(op="top_k")
        assert any("max-score" in note for note in plan.notes)

    def test_plan_reports_heap_fast_path_for_non_monotone(self):
        engine = SimilarityEngine()
        plan = engine.from_strings(CORPUS).predicate("jaccard").plan(op="top_k")
        assert any("heap" in note for note in plan.notes)

    def test_plan_reports_heap_fallback_for_blocked_aggregates(self):
        # The aggregate family applies blockers post-scoring, so a blocked
        # plan cannot run max-score pruning; the note must say so.
        engine = SimilarityEngine()
        blocked = engine.from_strings(CORPUS).predicate("bm25").blocker("lsh")
        assert any("heap" in note for note in blocked.plan(op="top_k").notes)
        # WeightedMatch blocks before scoring and keeps the pruned path.
        pruned = engine.from_strings(CORPUS).predicate("weighted_match").blocker("lsh")
        assert any("max-score" in note for note in pruned.plan(op="top_k").notes)

    def test_plan_reports_select_fast_path(self):
        engine = SimilarityEngine()
        plan = engine.from_strings(CORPUS).predicate("bm25").plan(op="select")
        assert any("filter before sorting" in note for note in plan.notes)

    def test_explain_surfaces_pruning_stats(self):
        engine = SimilarityEngine()
        report = (
            engine.from_strings(CORPUS * 50)
            .predicate("bm25")
            .explain("Morgan Stanley Inc", k=5)
        )
        assert report.plan.operation == "top_k"
        assert report.pruning is not None
        assert report.pruning.candidates_scored == report.num_candidates
        assert "pruning:" in report.describe()

    def test_explain_no_pruning_for_declarative(self):
        engine = SimilarityEngine()
        report = (
            engine.from_strings(CORPUS[:6])
            .predicate("bm25")
            .realization("declarative")
            .explain("Morgan Stanley", k=3)
        )
        assert report.pruning is None

    def test_run_many_topk_matches_individual(self):
        engine = SimilarityEngine()
        query = engine.from_strings(CORPUS).predicate("cosine")
        queries = ["Morgan Stanley", "IBM Corp"]
        batched = query.run_many(queries, op="top_k", k=3)
        assert [
            [(m.tid, m.score) for m in batch] for batch in batched
        ] == [[(m.tid, m.score) for m in query.top_k(text, 3)] for text in queries]

    def test_declarative_parity_for_topk(self):
        engine = SimilarityEngine()
        direct = engine.from_strings(CORPUS).predicate("bm25").top_k("IBM Corp", 5)
        declarative = (
            engine.from_strings(CORPUS)
            .predicate("bm25")
            .realization("declarative")
            .top_k("IBM Corp", 5)
        )
        assert [m.tid for m in direct] == [m.tid for m in declarative]


class TestJoinTopKProbing:
    def test_join_topk_matches_select_then_trim(self):
        from repro.core.join import ApproximateJoiner

        base = CORPUS * 5
        probe = ["Morgan Staney", "IBM Corp", "Goldman Sach"]
        joiner = ApproximateJoiner(base, predicate="bm25", threshold=2.0)
        fast = joiner.join(probe, top_k=4)
        expected = []
        for probe_id, text in enumerate(probe):
            matches = joiner.matches_for(probe_id, text)
            matches.sort(key=lambda m: (-m.score, m.right_id))
            expected.extend(matches[:4])
        assert [(m.left_id, m.right_id, m.score) for m in fast] == [
            (m.left_id, m.right_id, m.score) for m in expected
        ]

    def test_join_topk_non_monotone_predicate_unchanged(self):
        from repro.core.join import ApproximateJoiner

        joiner = ApproximateJoiner(CORPUS, predicate="jaccard", threshold=0.2)
        fast = joiner.join(["Morgan Stanley Inc"], top_k=2)
        assert len(fast) == 2
        assert fast[0].score >= fast[1].score
