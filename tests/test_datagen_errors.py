"""Unit and property tests for the error injectors."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.errors import (
    DEFAULT_ABBREVIATIONS,
    AbbreviationError,
    EditErrorInjector,
    TokenSwapInjector,
)
from repro.text.strings import levenshtein

words_text = st.lists(
    st.text(alphabet=st.characters(min_codepoint=65, max_codepoint=90), min_size=1, max_size=8),
    min_size=1,
    max_size=6,
).map(" ".join)


class TestEditErrorInjector:
    def test_extent_validation(self):
        with pytest.raises(ValueError):
            EditErrorInjector(extent=1.5)

    def test_zero_extent_is_identity(self):
        injector = EditErrorInjector(extent=0.0)
        assert injector.apply("Morgan Stanley", random.Random(1)) == "Morgan Stanley"

    def test_empty_string_unchanged(self):
        injector = EditErrorInjector(extent=0.3)
        assert injector.apply("", random.Random(1)) == ""

    def test_injects_at_least_one_edit(self):
        injector = EditErrorInjector(extent=0.05)
        rng = random.Random(7)
        corrupted = injector.apply("Morgan Stanley Group", rng)
        assert corrupted != "Morgan Stanley Group" or levenshtein(
            corrupted, "Morgan Stanley Group"
        ) == 0  # a swap of identical adjacent chars can be a no-op

    def test_higher_extent_means_more_damage_on_average(self):
        text = "Morgan Stanley Group Incorporated"
        low = EditErrorInjector(extent=0.05)
        high = EditErrorInjector(extent=0.40)
        low_damage = sum(
            levenshtein(text, low.apply(text, random.Random(seed))) for seed in range(30)
        )
        high_damage = sum(
            levenshtein(text, high.apply(text, random.Random(seed))) for seed in range(30)
        )
        assert high_damage > low_damage

    def test_deterministic_given_rng_state(self):
        injector = EditErrorInjector(extent=0.2)
        assert injector.apply("Beijing Hotel", random.Random(3)) == injector.apply(
            "Beijing Hotel", random.Random(3)
        )

    @given(words_text, st.floats(min_value=0.05, max_value=0.5), st.integers(0, 100))
    @settings(max_examples=60)
    def test_damage_bounded_by_edit_count(self, text, extent, seed):
        injector = EditErrorInjector(extent=extent)
        corrupted = injector.apply(text, random.Random(seed))
        max_edits = max(1, round(len(text) * extent))
        # insert/delete/replace change the Levenshtein distance by at most 1;
        # an adjacent-character swap changes it by at most 2.
        assert levenshtein(text, corrupted) <= 2 * max_edits


class TestTokenSwapInjector:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            TokenSwapInjector(swap_rate=-0.1)

    def test_zero_rate_is_identity(self):
        injector = TokenSwapInjector(swap_rate=0.0)
        assert injector.apply("Beijing Hotel", random.Random(1)) == "Beijing Hotel"

    def test_single_word_unchanged(self):
        injector = TokenSwapInjector(swap_rate=1.0)
        assert injector.apply("Beijing", random.Random(1)) == "Beijing"

    def test_two_words_swap(self):
        injector = TokenSwapInjector(swap_rate=1.0)
        assert injector.apply("Beijing Hotel", random.Random(1)) == "Hotel Beijing"

    def test_words_preserved_as_multiset(self):
        injector = TokenSwapInjector(swap_rate=0.6)
        text = "Pacific Gas and Electric Company"
        swapped = injector.apply(text, random.Random(9))
        assert sorted(swapped.split()) == sorted(text.split())

    @given(words_text, st.integers(0, 50))
    @settings(max_examples=60)
    def test_multiset_invariant(self, text, seed):
        injector = TokenSwapInjector(swap_rate=0.5)
        swapped = injector.apply(text, random.Random(seed))
        assert sorted(swapped.split()) == sorted(text.split())


class TestAbbreviationError:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            AbbreviationError(rate=2.0)

    def test_zero_rate_is_identity(self):
        injector = AbbreviationError(rate=0.0)
        assert injector.apply("AT&T Incorporated", random.Random(1)) == "AT&T Incorporated"

    def test_long_form_to_short_form(self):
        injector = AbbreviationError(rate=1.0)
        assert injector.apply("AT&T Incorporated", random.Random(1)) == "AT&T Inc."

    def test_short_form_to_long_form(self):
        injector = AbbreviationError(rate=1.0)
        assert injector.apply("AT&T Inc.", random.Random(1)) == "AT&T Incorporated"

    def test_unknown_words_untouched(self):
        injector = AbbreviationError(rate=1.0)
        assert injector.apply("Beijing Hotel", random.Random(1)) == "Beijing Hotel"

    def test_case_insensitive_lookup(self):
        injector = AbbreviationError(rate=1.0)
        assert injector.apply("acme incorporated", random.Random(1)) == "acme Inc."

    def test_all_default_pairs_are_bidirectional(self):
        injector = AbbreviationError(rate=1.0)
        rng = random.Random(5)
        for long_form, short_form in DEFAULT_ABBREVIATIONS:
            assert injector.apply(f"X {long_form}", rng).endswith(short_form)
            assert injector.apply(f"X {short_form}", rng).endswith(long_form)
