"""Unit tests for the aggregate weighted predicates (Cosine, BM25)."""

from __future__ import annotations

import math

import pytest

from repro.core.predicates import BM25, CosineTfIdf
from repro.text.tokenize import WordTokenizer
from repro.text.weights import BM25Parameters


class TestCosineTfIdf:
    def test_identity_scores_close_to_one(self, company_strings):
        predicate = CosineTfIdf().fit(company_strings)
        for tid in (0, 3, 5):
            assert predicate.score(company_strings[tid], tid) == pytest.approx(1.0, abs=1e-9)

    def test_scores_bounded_by_one(self, company_strings):
        predicate = CosineTfIdf().fit(company_strings)
        for scored in predicate.rank("Morgan Stanly Group Inc."):
            assert scored.score <= 1.0 + 1e-9

    def test_cosine_is_symmetric_between_tuples(self, company_strings):
        predicate = CosineTfIdf().fit(company_strings)
        a, b = company_strings[5], company_strings[7]
        assert predicate.score(a, 7) == pytest.approx(predicate.score(b, 5), rel=1e-6)

    def test_abbreviation_robustness(self, company_strings):
        predicate = CosineTfIdf(tokenizer=WordTokenizer()).fit(company_strings)
        scores = dict(predicate.rank("AT&T Incorporated"))
        assert scores[4] > scores[3]

    def test_manual_two_document_cosine(self):
        strings = ["A B", "A C"]
        predicate = CosineTfIdf(tokenizer=WordTokenizer()).fit(strings)
        idf_a = 0.0  # appears in both documents -> log(2) - log(2)
        idf_b = math.log(2)
        # For the query "A B" only document 0 shares a weighted token (B).
        scores = dict(predicate.rank("A B"))
        assert scores[0] == pytest.approx(1.0)
        assert scores.get(1, 0.0) == pytest.approx(0.0, abs=1e-12)
        assert idf_a == 0.0 and idf_b > 0

    def test_unseen_query_tokens_do_not_crash(self, company_strings):
        predicate = CosineTfIdf(tokenizer=WordTokenizer()).fit(company_strings)
        assert predicate.rank("zzz qqq www") == []


class TestBM25:
    def test_default_parameters(self):
        predicate = BM25()
        assert predicate.params == BM25Parameters(k1=1.5, k3=8.0, b=0.675)

    def test_identity_query_scores_maximally(self, company_strings):
        # "Beijing Hotel" and "Hotel Beijing" have identical padded q-gram
        # multisets, so exact ties are legitimate; the identity tuple must
        # always reach the maximum score.
        predicate = BM25().fit(company_strings)
        for tid in range(len(company_strings)):
            ranked = predicate.rank(company_strings[tid])
            assert predicate.score(company_strings[tid], tid) == pytest.approx(ranked[0].score)

    def test_rare_token_dominates(self, company_strings):
        predicate = BM25(tokenizer=WordTokenizer()).fit(company_strings)
        scores = dict(predicate.rank("AT&T Incorporated"))
        assert scores[4] > scores[3]

    def test_score_additivity_over_matching_tokens(self, company_strings):
        predicate = BM25(tokenizer=WordTokenizer()).fit(company_strings)
        single = predicate._scores("Beijing")[6]
        both = predicate._scores("Beijing Labs")[6]
        assert both > single

    def test_length_normalization_prefers_shorter_tuple(self):
        # Filler tuples keep ALPHA/BETA rare so their RS weights are positive.
        strings = [
            "ALPHA BETA",
            "ALPHA BETA GAMMA DELTA EPSILON ZETA ETA THETA",
            "ONE TWO", "THREE FOUR", "FIVE SIX", "SEVEN EIGHT", "NINE TEN",
        ]
        predicate = BM25(tokenizer=WordTokenizer()).fit(strings)
        scores = dict(predicate.rank("ALPHA BETA"))
        assert scores[0] > scores[1]

    def test_b_zero_disables_length_normalization(self):
        strings = [
            "ALPHA BETA",
            "ALPHA BETA GAMMA DELTA EPSILON ZETA",
            "ONE TWO", "THREE FOUR", "FIVE SIX",
        ]
        predicate = BM25(
            tokenizer=WordTokenizer(), params=BM25Parameters(k1=1.5, k3=8, b=0.0)
        ).fit(strings)
        scores = dict(predicate.rank("ALPHA"))
        assert scores[0] == pytest.approx(scores[1])

    def test_query_term_frequency_saturation(self, company_strings):
        predicate = BM25(tokenizer=WordTokenizer()).fit(company_strings)
        once = predicate._scores("Beijing")[5]
        many = predicate._scores("Beijing Beijing Beijing Beijing")[5]
        assert many > once
        assert many < 9 * once  # saturation well below the tf multiplier

class TestRankingContract:
    def test_rank_sorted_descending(self, company_strings):
        for predicate in (CosineTfIdf().fit(company_strings), BM25().fit(company_strings)):
            ranked = predicate.rank("Morgan Stanley")
            scores = [scored.score for scored in ranked]
            assert scores == sorted(scores, reverse=True)

    def test_rank_limit(self, company_strings):
        predicate = BM25().fit(company_strings)
        assert len(predicate.rank("Morgan Stanley", limit=3)) == 3

    def test_select_consistent_with_rank(self, company_strings):
        predicate = BM25().fit(company_strings)
        ranked = predicate.rank("Morgan Stanley Group")
        threshold = ranked[1].score
        selected = predicate.select("Morgan Stanley Group", threshold)
        assert all(scored.score >= threshold for scored in selected)
        assert len(selected) >= 2
