"""Tests for the SQL printer, including parse -> print -> parse round-trips."""

from __future__ import annotations

import pytest

from repro.dbengine import Database
from repro.dbengine.parser import parse_expression, parse_statement
from repro.dbengine.printer import format_expression, format_statement

ROUND_TRIP_STATEMENTS = [
    "SELECT 1",
    "SELECT DISTINCT a, b AS total FROM t",
    "SELECT t.a, COUNT(*) FROM t WHERE t.b = 'x' GROUP BY t.a HAVING COUNT(*) > 2",
    "SELECT a FROM t ORDER BY a DESC LIMIT 3",
    "SELECT * FROM base b INNER JOIN other o ON b.id = o.id",
    "SELECT * FROM base b LEFT JOIN other o ON b.id = o.id WHERE o.id IS NULL",
    "SELECT x FROM (SELECT y AS x FROM inner_table) sub",
    "SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN (SELECT b FROM s)",
    "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END AS label FROM t",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 5 OR a IS NOT NULL",
    "SELECT a FROM t UNION ALL SELECT a FROM s UNION SELECT a FROM r",
    "INSERT INTO scores (tid, score) SELECT tid, SUM(w) FROM weights GROUP BY tid",
    "INSERT INTO t (a, b) VALUES (1, 'x''y'), (2, NULL)",
    "CREATE TABLE IF NOT EXISTS t (tid INTEGER, token TEXT)",
    "DROP TABLE IF EXISTS t",
    "DELETE FROM t WHERE a = 1",
    # statements taken from the paper's figures
    "INSERT INTO INTERSECT_SCORES (tid, score) SELECT R1.tid, COUNT(*) "
    "FROM BASE_TOKENS R1, QUERY_TOKENS R2 WHERE R1.token = R2.token GROUP BY R1.tid",
    "SELECT B1.tid, EXP(B1.score + B2.sumcompm) FROM "
    "(SELECT P1.tid AS tid, SUM(LOG(P1.pm)) - SUM(LOG(1.0 - P1.pm)) - SUM(LOG(P1.cfcs)) AS score "
    "FROM BASE_PM P1, QUERY_TOKENS T2 WHERE P1.token = T2.token GROUP BY P1.tid) B1, "
    "BASE_SUMCOMPM B2 WHERE B1.tid = B2.tid",
]


class TestRoundTrip:
    @pytest.mark.parametrize("sql", ROUND_TRIP_STATEMENTS)
    def test_parse_print_parse_is_stable(self, sql):
        """Printing a parsed statement and re-parsing it yields the same AST."""
        first = parse_statement(sql)
        printed = format_statement(first)
        second = parse_statement(printed)
        assert format_statement(second) == printed
        assert second == first

    def test_expression_round_trip(self):
        for text in [
            "1 + 2 * 3",
            "a AND b OR NOT c",
            "LOG(x) - LOG(y)",
            "COUNT(DISTINCT t.token)",
            "price BETWEEN 1 AND 2",
        ]:
            expression = parse_expression(text)
            printed = format_expression(expression)
            assert parse_expression(printed) == expression


class TestPrintedSqlExecutes:
    def test_printed_statement_produces_same_result(self):
        db = Database()
        db.execute("CREATE TABLE t (tid INTEGER, token TEXT)")
        db.insert_rows("t", [(1, "A"), (1, "B"), (2, "A")])
        sql = "SELECT tid, COUNT(*) AS c FROM t GROUP BY tid HAVING COUNT(*) >= 1 ORDER BY tid"
        original = db.query(sql).rows
        printed = format_statement(parse_statement(sql))
        assert db.query(printed).rows == original

    def test_string_literal_escaping(self):
        db = Database()
        statement = parse_statement("SELECT 'it''s'")
        assert db.query(format_statement(statement)).rows == [("it's",)]


class TestFormattingDetails:
    def test_literals(self):
        assert format_expression(parse_expression("NULL")) == "NULL"
        assert format_expression(parse_expression("TRUE")) == "TRUE"
        assert format_expression(parse_expression("'abc'")) == "'abc'"

    def test_case_without_else(self):
        printed = format_statement(parse_statement("SELECT CASE WHEN a = 1 THEN 2 END FROM t"))
        assert "ELSE" not in printed

    def test_star_and_qualified_star(self):
        assert "t.*" in format_statement(parse_statement("SELECT t.* FROM t"))

    def test_negative_numbers(self):
        printed = format_expression(parse_expression("-5 + 3"))
        assert parse_expression(printed) == parse_expression("-5 + 3")
