"""Equivalence suite for the vectorized scoring kernels.

The contract of :mod:`repro.core.kernels` is *bit-identity*: for every
kernelized predicate (the monotone-sum family -- WeightedMatch,
WeightedJaccard, Cosine, BM25, LM, HMM), the numpy backend must return
exactly the floats the pure-Python backend returns, across corpora, queries,
k values, blockers, candidate restrictions, shard counts, and executors.
The tests force each backend in turn via :func:`kernels.use_backend` and
compare with ``==`` -- no tolerances anywhere.

Mirrors the structure of ``tests/test_topk_fastpath.py`` (which pins the
pruned-vs-unpruned equivalence; this file pins the backend equivalence).
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import make_blocker
from repro.core import kernels
from repro.core.index import WeightedPostingIndex
from repro.core.predicates.registry import make_predicate
from repro.engine import SimilarityEngine
from repro.obs.export import bench_envelope

#: Every predicate whose scoring routes through repro.core.kernels.
KERNELIZED = ["weighted_match", "weighted_jaccard", "cosine", "bm25", "lm", "hmm"]

#: The subset with a max-score top_k plan (kernelized accumulator path).
MONOTONE = ["weighted_match", "cosine", "bm25"]

CORPUS = [
    "AT&T Corporation",
    "ATT Corp",
    "A T and T Corporation",
    "International Business Machines",
    "Intl Business Machines Corp",
    "IBM Corporation",
    "Morgan Stanley Inc",
    "Morgn Stanley Incorporated",
    "Goldman Sachs Group",
    "Goldmann Sachs Grp",
    "Deutsche Bank AG",
    "Deutsch Bank",
]

_words = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "corp", "inc", "intl", "ab", "ba", "aa"]
)
_strings = st.lists(_words, min_size=1, max_size=4).map(" ".join)
_corpora = st.lists(_strings, min_size=2, max_size=24)

needs_numpy = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy unavailable"
)


def _pairs(scored):
    return [(match.tid, match.score) for match in scored]


def _both_backends(operation):
    """Run ``operation()`` under each backend and return both results."""
    with kernels.use_backend("python"):
        python_result = operation()
    with kernels.use_backend("numpy"):
        numpy_result = operation()
    return python_result, numpy_result


@needs_numpy
class TestScoresBitIdentical:
    """_scores / rank / select / score agree across backends, bit for bit."""

    @pytest.mark.parametrize("name", KERNELIZED)
    @given(corpus=_corpora, query=_strings)
    @settings(max_examples=30, deadline=None)
    def test_scores_dict(self, name, corpus, query):
        predicate = make_predicate(name).fit(corpus)
        python_scores, numpy_scores = _both_backends(
            lambda: predicate._scores(query)
        )
        assert python_scores == numpy_scores

    @pytest.mark.parametrize("name", KERNELIZED)
    @given(corpus=_corpora, query=_strings, limit=st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_rank(self, name, corpus, query, limit):
        predicate = make_predicate(name).fit(corpus)
        python_rank, numpy_rank = _both_backends(
            lambda: _pairs(predicate.rank(query, limit=limit))
        )
        assert python_rank == numpy_rank

    @pytest.mark.parametrize("name", KERNELIZED)
    @given(corpus=_corpora, query=_strings, threshold=st.floats(-5.0, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_select(self, name, corpus, query, threshold):
        predicate = make_predicate(name).fit(corpus)
        python_sel, numpy_sel = _both_backends(
            lambda: _pairs(predicate.select(query, threshold))
        )
        assert python_sel == numpy_sel

    @pytest.mark.parametrize("name", KERNELIZED)
    def test_score_matches_scores_on_company_corpus(self, name):
        predicate = make_predicate(name).fit(CORPUS)
        for query in ("Morgn Stanley", "IBM Corp", "Goldman", "zzz"):
            with kernels.use_backend("numpy"):
                scores = predicate._scores(query)
                for tid in range(len(CORPUS)):
                    assert predicate.score(query, tid) == scores.get(tid, 0.0)


@needs_numpy
class TestTopKBitIdentical:
    """The max-score accumulator path agrees across backends."""

    @pytest.mark.parametrize("name", MONOTONE)
    @given(corpus=_corpora, query=_strings, k=st.integers(0, 30))
    @settings(max_examples=30, deadline=None)
    def test_topk(self, name, corpus, query, k):
        predicate = make_predicate(name).fit(corpus)
        python_top, numpy_top = _both_backends(
            lambda: _pairs(predicate.top_k(query, k))
        )
        assert python_top == numpy_top

    @pytest.mark.parametrize("name", MONOTONE)
    @given(corpus=_corpora, query=_strings, k=st.integers(1, 10), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_topk_under_restriction(self, name, corpus, query, k, data):
        predicate = make_predicate(name).fit(corpus)
        allowed = data.draw(
            st.sets(st.integers(0, len(corpus) - 1), max_size=len(corpus))
        )
        with predicate.restrict_candidates(allowed):
            python_top, numpy_top = _both_backends(
                lambda: _pairs(predicate.top_k(query, k))
            )
        assert python_top == numpy_top

    @pytest.mark.parametrize("name", MONOTONE)
    @given(corpus=_corpora, query=_strings, k=st.integers(1, 10))
    @settings(max_examples=15, deadline=None)
    def test_topk_under_blocker(self, name, corpus, query, k):
        predicate = make_predicate(name).fit(corpus)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            predicate.set_blocker(make_blocker("lsh", lsh_bands=4, lsh_rows=2))
        python_top, numpy_top = _both_backends(
            lambda: _pairs(predicate.top_k(query, k))
        )
        assert python_top == numpy_top

    @pytest.mark.parametrize("name", MONOTONE)
    def test_topk_stats_match_on_company_corpus(self, name):
        """Same results *and* same pruning work counters on both backends."""
        predicate = make_predicate(name).fit(CORPUS * 20)
        for query in ("Morgn Stanley", "IBM Corp", "zzz"):
            for k in (1, 10, 100):
                python_top, numpy_top = _both_backends(
                    lambda query=query, k=k: (
                        _pairs(predicate.top_k(query, k)),
                        predicate.pruning_stats,
                    )
                )
                assert python_top[0] == numpy_top[0]
                assert python_top[1] == numpy_top[1]


@needs_numpy
class TestShardedBitIdentical:
    """Sharded execution agrees across backends for every executor."""

    @pytest.mark.parametrize("name", ["bm25", "weighted_match", "lm"])
    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_sharded_topk_and_rank(self, name, num_shards, executor):
        engine = SimilarityEngine()
        query = (
            engine.from_strings(CORPUS * 3)
            .predicate(name)
            .shards(num_shards, executor=executor)
        )

        def run():
            return (
                _pairs(query.top_k("Morgn Stanley", k=5)),
                _pairs(query.rank("IBM Corp", limit=8)),
            )

        python_result, numpy_result = _both_backends(run)
        assert python_result == numpy_result

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_sharded_run_many(self, executor):
        engine = SimilarityEngine()
        query = (
            engine.from_strings(CORPUS * 3)
            .predicate("cosine")
            .shards(2, executor=executor)
        )
        queries = ["Morgn Stanley", "IBM Corp", "Goldman", "zzz"]

        def run():
            return [
                _pairs(ranking)
                for ranking in query.run_many(queries, op="top_k", k=4)
            ]

        python_result, numpy_result = _both_backends(run)
        assert python_result == numpy_result

    def test_sliced_index_arrays_match_shard_fit(self):
        """shard==slice invariant extends to the array backing."""
        predicate = make_predicate("bm25").fit(CORPUS)
        weighted = predicate._weighted_index
        sliced = weighted.slice(3, 9)
        for token in list(weighted._postings):
            pair = sliced.arrays(token)
            if pair is None:
                assert sliced.postings(token) == []
                continue
            tids, contributions = pair
            assert tids.tolist() == [tid for tid, _ in sliced.postings(token)]
            assert contributions.tolist() == [
                contribution for _, contribution in sliced.postings(token)
            ]


class TestKernelDispatch:
    """Backend selection, forcing, and op counters."""

    def test_active_backend_matches_availability(self):
        expected = "numpy" if kernels.numpy_available() else "python"
        assert kernels.active_backend() == expected

    def test_use_backend_python_always_allowed(self):
        with kernels.use_backend("python"):
            assert kernels.active_backend() == "python"
        # restored afterwards
        expected = "numpy" if kernels.numpy_available() else "python"
        assert kernels.active_backend() == expected

    def test_use_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            with kernels.use_backend("fortran"):
                pass

    @pytest.mark.skipif(kernels.numpy_available(), reason="numpy present")
    def test_use_backend_numpy_requires_numpy(self):
        with pytest.raises(RuntimeError):
            with kernels.use_backend("numpy"):
                pass

    def test_ops_counter_increments(self):
        predicate = make_predicate("bm25").fit(CORPUS)
        backend = kernels.active_backend()
        before = kernels.ops_snapshot()[backend]
        predicate.rank("IBM Corp", limit=3)
        assert kernels.ops_snapshot()[backend] > before

    def test_accumulate_keeps_cancelled_candidates(self):
        """Sums cancelling to exactly 0.0 must stay in the candidate set
        (negative RS weights make this reachable), on both backends."""
        index = WeightedPostingIndex({"a": [(0, 1.5), (1, 2.0)], "b": [(0, -1.5)]})
        items = [("a", 1.0), ("b", 1.0)]
        with kernels.use_backend("python"):
            python_scores = kernels.accumulate(index, items, 2)
        assert python_scores == {0: 0.0, 1: 2.0}
        if kernels.numpy_available():
            with kernels.use_backend("numpy"):
                assert kernels.accumulate(index, items, 2) == python_scores

    def test_bench_envelope_records_kernel(self):
        report = bench_envelope("unit", None, {}, [])
        assert report["kernel"] == kernels.active_backend()
        with kernels.use_backend("python"):
            assert bench_envelope("unit", None, {}, [])["kernel"] == "python"


class TestEngineSurface:
    """plan() notes and obs counters surface the chosen kernel."""

    def test_plan_note_names_backend(self):
        engine = SimilarityEngine()
        plan = engine.from_strings(CORPUS).predicate("bm25").plan("top_k")
        backend = kernels.active_backend()
        assert any(f"scoring kernels: {backend!r}" in note for note in plan.notes)

    def test_plan_note_follows_forced_backend(self):
        engine = SimilarityEngine()
        query = engine.from_strings(CORPUS).predicate("cosine")
        with kernels.use_backend("python"):
            plan = query.plan("rank")
        assert any("'python' backend" in note for note in plan.notes)

    def test_plan_note_absent_for_unkernelized_predicates(self):
        engine = SimilarityEngine()
        plan = engine.from_strings(CORPUS).predicate("jaccard").plan("rank")
        assert not any("scoring kernels" in note for note in plan.notes)

    def test_kernel_ops_counter_published(self):
        engine = SimilarityEngine()
        query = engine.from_strings(CORPUS).predicate("bm25")
        query.top_k("IBM Corp", k=3)
        backend = kernels.active_backend()
        counters = engine.obs.metrics.to_dict()["counters"]
        assert counters.get("kernel_ops." + backend, 0) > 0
