"""Tests for the blocking & candidate-pruning subsystem (:mod:`repro.blocking`)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import (
    BLOCKER_NAMES,
    Blocker,
    BlockingPipeline,
    BlockingStats,
    LengthFilter,
    MinHashLSH,
    PrefixFilter,
    make_blocker,
)
from repro.core import ApproximateJoiner, Deduplicator
from repro.core.index import InvertedIndex
from repro.core.predicates import Jaccard, make_predicate
from repro.text.tokenize import QgramTokenizer


def _jaccard(left: set, right: set) -> float:
    union = left | right
    return len(left & right) / len(union) if union else 0.0


# ---------------------------------------------------------------------------
# token-set corpora for the property-based exactness tests
# ---------------------------------------------------------------------------

_token = st.text(alphabet="abcdef", min_size=1, max_size=2)
_token_lists = st.lists(
    st.lists(_token, min_size=0, max_size=8), min_size=2, max_size=12
)
_thresholds = st.sampled_from([0.2, 0.3, 0.5, 0.6, 0.75, 0.9, 1.0])


class TestBlockingStats:
    def test_record_and_ratio(self):
        stats = BlockingStats()
        stats.record(10, 2)
        stats.record(6, 2)
        assert stats.probes == 2
        assert stats.candidates_in == 16
        assert stats.candidates_out == 4
        assert stats.pruned == 12
        assert stats.reduction_ratio == 4.0

    def test_ratio_degenerate_cases(self):
        stats = BlockingStats()
        assert stats.reduction_ratio == 1.0  # nothing seen yet
        stats.record(5, 0)
        assert stats.reduction_ratio == math.inf

    def test_reset(self):
        stats = BlockingStats()
        stats.record(3, 1)
        stats.reset()
        assert stats.probes == 0
        assert stats.candidates_in == 0


class TestLengthFilter:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            LengthFilter(1.5)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            LengthFilter(0.5).prune({"ab"}, {0})

    def test_unfitted_partners_and_blocks_raise(self):
        for blocker in (LengthFilter(0.5), PrefixFilter(0.5), MinHashLSH()):
            with pytest.raises(RuntimeError):
                blocker.partners(0)
            with pytest.raises(RuntimeError):
                blocker.blocks()

    def test_supports_threshold(self):
        blocker = LengthFilter(0.6)
        assert blocker.supports_threshold(0.6)
        assert blocker.supports_threshold(0.9)
        assert not blocker.supports_threshold(0.3)
        assert MinHashLSH().supports_threshold(0.0)
        pipeline = BlockingPipeline([LengthFilter(0.6), MinHashLSH()])
        assert not pipeline.supports_threshold(0.5)
        assert pipeline.supports_threshold(0.7)

    def test_prune_drops_incompatible_sizes(self):
        blocker = LengthFilter(0.5).fit([["a", "b", "c", "d"], ["a"], ["a", "b", "c"]])
        survivors = blocker.prune({"a", "b", "c", "d"}, {0, 1, 2})
        assert survivors == {0, 2}  # |D|=1 cannot reach Jaccard 0.5 vs |Q|=4

    def test_zero_threshold_is_noop(self):
        blocker = LengthFilter(0.0).fit([["a"], ["a", "b", "c", "d", "e"]])
        assert blocker.prune({"a"}, {0, 1}) == {0, 1}
        assert blocker.partners(0) is None

    def test_partners_symmetric_compatibility(self):
        blocker = LengthFilter(0.5).fit([["a"], ["a", "b"], ["a", "b", "c", "d"]])
        assert 1 in blocker.partners(0)  # 1/2 >= 0.5 possible
        assert 2 not in blocker.partners(0)  # 1/4 < 0.5 impossible
        assert 0 not in blocker.partners(2)

    def test_blocks_cover_all_compatible_pairs(self):
        token_lists = [["a"], ["a", "b"], ["a", "b", "c"], ["a", "b", "c", "d"]]
        blocker = LengthFilter(0.6).fit(token_lists)
        covered = set()
        for block in blocker.blocks():
            for left in block:
                for right in block:
                    if left < right:
                        covered.add((left, right))
        sizes = [len(set(tokens)) for tokens in token_lists]
        for left in range(4):
            for right in range(left + 1, 4):
                low, high = sorted((sizes[left], sizes[right]))
                if low / high >= 0.6:
                    assert (left, right) in covered

    @given(token_lists=_token_lists, threshold=_thresholds)
    @settings(max_examples=120, deadline=None)
    def test_never_drops_reachable_pair(self, token_lists, threshold):
        """Exactness: no pair with Jaccard >= threshold is ever pruned."""
        sets = [set(tokens) for tokens in token_lists]
        blocker = LengthFilter(threshold).fit(token_lists)
        universe = set(range(len(sets)))
        for qid, query in enumerate(sets):
            survivors = blocker.prune(set(query), universe)
            partners = blocker.partners(qid)
            for tid, candidate in enumerate(sets):
                if _jaccard(query, candidate) >= threshold and (query or candidate):
                    assert tid in survivors
                    if partners is not None:
                        assert tid in partners


class TestPrefixFilter:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PrefixFilter(-0.1)

    def test_prefix_length_formula(self):
        blocker = PrefixFilter(0.8)
        # |X|=10, needed overlap ceil(8)=8 -> prefix 10-8+1=3
        assert blocker.prefix_length(10) == 3
        assert blocker.prefix_length(0) == 0
        assert PrefixFilter(0.0).prefix_length(7) == 7

    def test_probe_tokens_prefers_rare_tokens(self):
        token_lists = [["r1", "c"], ["r2", "c"], ["r3", "c"], ["r4", "c"]]
        blocker = PrefixFilter(0.5).fit(token_lists)
        probe = blocker.probe_tokens({"r1", "c"})
        # prefix length 2 here, but rare token must come first in the order
        assert "r1" in probe

    def test_probe_tokens_shrinks_query(self):
        corpus = [["a", "b", "c", "d", "e", "f"]] * 3
        blocker = PrefixFilter(0.9).fit(corpus)
        probe = blocker.probe_tokens({"a", "b", "c", "d", "e", "f"})
        assert len(probe) == blocker.prefix_length(6) == 1

    @given(token_lists=_token_lists, threshold=_thresholds)
    @settings(max_examples=120, deadline=None)
    def test_never_drops_reachable_pair(self, token_lists, threshold):
        """Exactness of both the probe path and the partners (pair) path."""
        sets = [set(tokens) for tokens in token_lists]
        blocker = PrefixFilter(threshold).fit(token_lists)
        index = InvertedIndex(token_lists)
        for qid, query in enumerate(sets):
            probed = index.candidates(query, blocker=blocker)
            partners = blocker.partners(qid)
            for tid, candidate in enumerate(sets):
                if query and _jaccard(query, candidate) >= threshold:
                    assert tid in probed
                    if partners is not None:
                        assert tid in partners


class TestMinHashLSH:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MinHashLSH(num_bands=0)

    def test_num_hashes(self):
        assert MinHashLSH(num_bands=8, rows_per_band=3).num_hashes == 24

    def test_candidate_probability_s_curve(self):
        blocker = MinHashLSH(num_bands=16, rows_per_band=4)
        assert blocker.candidate_probability(1.0) == pytest.approx(1.0)
        assert blocker.candidate_probability(0.0) == pytest.approx(0.0)
        assert blocker.candidate_probability(0.9) > blocker.candidate_probability(0.3)
        with pytest.raises(ValueError):
            blocker.candidate_probability(1.5)

    def test_identical_sets_always_collide(self):
        token_lists = [["x", "y", "z"], ["x", "y", "z"], ["p", "q"]]
        blocker = MinHashLSH(num_bands=4, rows_per_band=2).fit(token_lists)
        assert 1 in blocker.partners(0)
        assert blocker.prune({"x", "y", "z"}, {0, 1, 2}) >= {0, 1}

    def test_partners_include_self(self):
        blocker = MinHashLSH().fit([["a", "b"], ["c", "d"]])
        assert 0 in blocker.partners(0)

    def test_blocks_are_multi_member_buckets(self):
        token_lists = [["x", "y", "z"], ["x", "y", "z"], ["zz", "qq"]]
        blocker = MinHashLSH(num_bands=4, rows_per_band=2).fit(token_lists)
        for block in blocker.blocks():
            assert len(block) >= 2

    def test_deterministic_across_fits(self):
        token_lists = [["a", "b", "c"], ["a", "b"], ["x", "y"]]
        first = MinHashLSH(num_bands=8, rows_per_band=2).fit(token_lists)
        second = MinHashLSH(num_bands=8, rows_per_band=2).fit(token_lists)
        for tid in range(3):
            assert first.partners(tid) == second.partners(tid)

    def test_recall_against_unblocked_self_join(self, small_dataset):
        """LSH blocking keeps (nearly) all true matches on a dirty dataset."""
        strings = small_dataset.strings[:250]
        threshold = 0.6
        base = ApproximateJoiner(strings, predicate="jaccard", threshold=threshold)
        baseline_pairs = {
            (match.left_id, match.right_id) for match in base.self_join()
        }
        baseline_stats = base.last_self_join_stats
        assert baseline_pairs  # the generated dataset has known duplicates

        blocked = ApproximateJoiner(
            strings,
            predicate="jaccard",
            threshold=threshold,
            blocker=MinHashLSH(num_bands=24, rows_per_band=3),
        )
        blocked_pairs = {
            (match.left_id, match.right_id) for match in blocked.self_join()
        }
        blocked_stats = blocked.last_self_join_stats

        recall = len(blocked_pairs & baseline_pairs) / len(baseline_pairs)
        assert recall >= 0.95
        assert blocked_pairs <= baseline_pairs  # LSH can drop but never invent
        assert blocked_stats.pairs_examined < baseline_stats.pairs_examined


class TestBlockingPipeline:
    def test_requires_stages(self):
        with pytest.raises(ValueError):
            BlockingPipeline([])

    def test_name_and_exactness(self):
        exact = BlockingPipeline([LengthFilter(0.5), PrefixFilter(0.5)])
        assert exact.name == "length+prefix"
        assert exact.exact is True
        mixed = BlockingPipeline([LengthFilter(0.5), MinHashLSH()])
        assert mixed.exact is False

    def test_prune_intersects_stages(self):
        token_lists = [["a", "b", "c", "d"], ["a"], ["a", "b", "c"]]
        pipeline = BlockingPipeline([LengthFilter(0.5), PrefixFilter(0.5)])
        pipeline.fit(token_lists)
        survivors = pipeline.prune({"a", "b", "c", "d"}, {0, 1, 2})
        assert 1 not in survivors  # dropped by the length stage

    def test_stage_stats_collected(self):
        pipeline = BlockingPipeline([LengthFilter(0.5), PrefixFilter(0.5)])
        pipeline.fit([["a", "b"], ["a"], ["a", "b", "c", "d", "e"]])
        pipeline.prune({"a", "b"}, {0, 1, 2})
        names = [name for name, _ in pipeline.stage_stats()]
        assert names == ["length", "prefix"]
        assert pipeline.stats.probes == 1
        assert pipeline.stage_stats()[0][1].probes == 1
        pipeline.reset_stats()
        assert pipeline.stage_stats()[0][1].probes == 0

    @given(token_lists=_token_lists, threshold=_thresholds)
    @settings(max_examples=60, deadline=None)
    def test_exact_pipeline_never_drops_reachable_pair(self, token_lists, threshold):
        sets = [set(tokens) for tokens in token_lists]
        pipeline = BlockingPipeline([LengthFilter(threshold), PrefixFilter(threshold)])
        pipeline.fit(token_lists)
        index = InvertedIndex(token_lists)
        for qid, query in enumerate(sets):
            probed = index.candidates(query, blocker=pipeline)
            partners = pipeline.partners(qid)
            for tid, candidate in enumerate(sets):
                if query and _jaccard(query, candidate) >= threshold:
                    assert tid in probed
                    if partners is not None:
                        assert tid in partners


class TestMakeBlocker:
    def test_none_specs(self):
        assert make_blocker(None) is None
        assert make_blocker("none") is None
        assert make_blocker("") is None

    def test_single_stages(self):
        assert isinstance(make_blocker("length", threshold=0.5), LengthFilter)
        assert isinstance(make_blocker("prefix", threshold=0.5), PrefixFilter)
        assert isinstance(make_blocker("lsh"), MinHashLSH)

    def test_pipeline_spec(self):
        blocker = make_blocker("length+prefix+lsh", threshold=0.5, lsh_bands=8)
        assert isinstance(blocker, BlockingPipeline)
        assert [stage.name for stage in blocker.stages] == ["length", "prefix", "lsh"]
        assert blocker.stages[2].num_bands == 8

    def test_exact_filters_require_threshold(self):
        with pytest.raises(ValueError):
            make_blocker("length")
        with pytest.raises(ValueError):
            make_blocker("prefix")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_blocker("sorted-neighborhood")

    def test_blocker_names_constant(self):
        assert set(BLOCKER_NAMES) == {"length", "prefix", "lsh"}


class TestPredicateIntegration:
    def test_set_blocker_after_fit(self, company_strings):
        predicate = Jaccard().fit(company_strings)
        blocker = LengthFilter(0.5)
        predicate.set_blocker(blocker)
        assert blocker.is_fitted
        assert predicate.blocker is blocker

    def test_set_blocker_before_fit(self, company_strings):
        predicate = Jaccard()
        predicate.set_blocker(LengthFilter(0.5))
        predicate.fit(company_strings)
        assert predicate.blocker.is_fitted

    def test_blocked_select_is_subset_of_unblocked(self, company_strings):
        query = "Beijing Hotel"
        plain = Jaccard().fit(company_strings)
        blocked = Jaccard().set_blocker(LengthFilter(0.5)).fit(company_strings)
        plain_ids = {st.tid for st in plain.select(query, 0.5)}
        blocked_ids = {st.tid for st in blocked.select(query, 0.5)}
        assert blocked_ids == plain_ids  # exact filter at matching threshold

    def test_exact_filter_preserves_thresholded_scores(self, company_strings):
        threshold = 0.6
        plain = Jaccard().fit(company_strings)
        blocked = (
            Jaccard()
            .set_blocker(BlockingPipeline([LengthFilter(threshold), PrefixFilter(threshold)]))
            .fit(company_strings)
        )
        for query in company_strings:
            assert blocked.select(query, threshold) == plain.select(query, threshold)

    def test_generic_path_predicates_accept_blockers(self, company_strings):
        """Non-overlap predicates (e.g. BM25) filter candidates after scoring."""
        predicate = make_predicate("bm25")
        with pytest.warns(UserWarning, match="heuristic"):
            predicate.set_blocker(LengthFilter(0.5))
        predicate.fit(company_strings)
        results = predicate.rank("Beijing Hotel")
        assert results  # still finds the near-duplicates
        assert predicate.last_num_candidates == len(results)

    def test_jaccard_blocker_on_score_predicate_warns(self, company_strings):
        """Length/prefix bounds are Jaccard semantics; on BM25 they are heuristics."""
        with pytest.warns(UserWarning, match="Jaccard"):
            make_predicate("bm25").set_blocker(PrefixFilter(0.5))

    def test_jaccard_blocker_on_jaccard_predicate_is_silent(self, company_strings):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Jaccard().set_blocker(LengthFilter(0.5))
            Jaccard().set_blocker(MinHashLSH())  # LSH is predicate-agnostic
            make_predicate("bm25").set_blocker(MinHashLSH())

    def test_select_below_blocker_threshold_raises(self, company_strings):
        """An exact blocker built for t must refuse selections below t."""
        predicate = Jaccard().set_blocker(LengthFilter(0.8)).fit(company_strings)
        with pytest.raises(ValueError, match="below the threshold"):
            predicate.select("Beijing Hotel", 0.3)
        # At or above the blocker's threshold everything still works.
        assert predicate.select("Beijing Hotel", 0.8)
        assert predicate.select("Beijing Hotel", 0.9) is not None

    def test_restrict_candidates_context(self, company_strings):
        predicate = Jaccard().fit(company_strings)
        with predicate.restrict_candidates({5, 7}):
            ids = {st.tid for st in predicate.rank("Beijing Hotel")}
            assert ids <= {5, 7}
        # restriction is scoped: everything is a candidate again afterwards
        assert len(predicate.rank("Beijing Hotel")) > 2

    def test_last_num_candidates_tracks_scored_set(self, company_strings):
        predicate = Jaccard().fit(company_strings)
        predicate.rank("Beijing Hotel")
        unblocked = predicate.last_num_candidates
        predicate.set_blocker(LengthFilter(0.6))
        predicate.rank("Beijing Hotel")
        assert predicate.last_num_candidates <= unblocked


class TestJoinerIntegration:
    def test_exact_blocked_self_join_is_byte_identical(self, company_strings):
        threshold = 0.5
        base = ApproximateJoiner(company_strings, predicate="jaccard", threshold=threshold)
        baseline = base.self_join()
        for spec in ("length", "prefix", "length+prefix"):
            joiner = ApproximateJoiner(
                company_strings,
                predicate="jaccard",
                threshold=threshold,
                blocker=make_blocker(spec, threshold=threshold),
            )
            assert joiner.self_join() == baseline

    def test_blocked_self_join_examines_fewer_pairs(self, company_strings):
        threshold = 0.5
        base = ApproximateJoiner(company_strings, predicate="jaccard", threshold=threshold)
        base.self_join()
        blocked = ApproximateJoiner(
            company_strings,
            predicate="jaccard",
            threshold=threshold,
            blocker=make_blocker("length+prefix", threshold=threshold),
        )
        blocked.self_join()
        assert (
            blocked.last_self_join_stats.pairs_examined
            < base.last_self_join_stats.pairs_examined
        )

    def test_singleton_blocks_skip_probing(self):
        # "zz...z" shares no bigram with anything and is far longer than the
        # rest, so the length filter puts it in a singleton block.
        strings = ["abcd", "abce", "zzzzzzzzzzzzzzzzzzzzzzzz"]
        joiner = ApproximateJoiner(
            strings,
            predicate="jaccard",
            threshold=0.5,
            blocker=LengthFilter(0.5),
        )
        joiner.self_join()
        assert joiner.last_self_join_stats.probes_skipped >= 1

    def test_blocked_self_join_include_identity(self, company_strings):
        threshold = 0.99
        joiner = ApproximateJoiner(
            company_strings,
            predicate="jaccard",
            threshold=threshold,
            blocker=LengthFilter(threshold),
        )
        matches = joiner.self_join(include_identity=True)
        identity = [m for m in matches if m.left_id == m.right_id]
        assert len(identity) == len(company_strings)

    def test_join_with_blocker_prunes_probes(self, company_strings):
        joiner = ApproximateJoiner(
            company_strings,
            predicate="jaccard",
            threshold=0.5,
            blocker=make_blocker("length+prefix", threshold=0.5),
        )
        matches = joiner.join(["Beijing Hotel"])
        assert {match.right_text for match in matches} >= {"Beijing Hotel", "Hotel Beijing"}

    def test_self_join_threshold_override_below_blocker_raises(self, company_strings):
        """Regression: a lower per-call threshold must not silently over-prune."""
        joiner = ApproximateJoiner(
            company_strings,
            predicate="jaccard",
            threshold=0.8,
            blocker=LengthFilter(0.8),
        )
        with pytest.raises(ValueError, match="below the threshold"):
            joiner.self_join(threshold=0.3)
        with pytest.raises(ValueError, match="below the threshold"):
            joiner.join(["Beijing Hotel"], threshold=0.3)
        # Even when every probe would be skipped via singleton blocks (the
        # predicate-level guard is never reached), self_join must still raise.
        all_singletons = ApproximateJoiner(
            ["abcdefgh", "abcd"],
            predicate="jaccard",
            threshold=0.8,
            blocker=LengthFilter(0.8),
        )
        with pytest.raises(ValueError, match="below the threshold"):
            all_singletons.self_join(threshold=0.3)
        # Raising the threshold keeps the filter exact and is allowed.
        unblocked = ApproximateJoiner(
            company_strings, predicate="jaccard", threshold=0.8
        ).self_join(threshold=0.9)
        assert joiner.self_join(threshold=0.9) == unblocked

    def test_blocker_property_exposed(self, company_strings):
        blocker = LengthFilter(0.5)
        joiner = ApproximateJoiner(
            company_strings, predicate="jaccard", threshold=0.5, blocker=blocker
        )
        assert joiner.blocker is blocker
        assert ApproximateJoiner(company_strings, predicate="jaccard").blocker is None


class TestDeduplicatorIntegration:
    def test_exact_blocker_gives_identical_clusters(self, small_dataset):
        strings = small_dataset.strings[:150]
        plain = Deduplicator(strings, predicate="jaccard", threshold=0.55)
        blocked = Deduplicator(
            strings,
            predicate="jaccard",
            threshold=0.55,
            blocker=make_blocker("length+prefix", threshold=0.55),
        )
        assert blocked.clusters() == plain.clusters()
        assert blocked.blocker is not None

    def test_lsh_blocked_quality_stays_close(self, small_dataset):
        strings = small_dataset.strings[:150]
        truth = small_dataset.cluster_ids[:150]
        plain = Deduplicator(strings, predicate="jaccard", threshold=0.55)
        blocked = Deduplicator(
            strings,
            predicate="jaccard",
            threshold=0.55,
            blocker=MinHashLSH(num_bands=24, rows_per_band=3),
        )
        plain_quality = plain.quality(truth)
        blocked_quality = blocked.quality(truth)
        assert blocked_quality.f1 >= plain_quality.f1 - 0.05


class TestBlockerABC:
    def test_default_hooks_are_noops(self):
        class Passthrough(Blocker):
            name = "passthrough"

            def _fit(self, token_sets):
                pass

        blocker = Passthrough().fit([["a"], ["b"]])
        assert blocker.probe_tokens({"a"}) == {"a"}
        assert blocker.prune({"a"}, {0, 1}) == {0, 1}
        assert blocker.partners(0) is None
        assert blocker.blocks() is None
        assert blocker.num_tuples == 2

    def test_fit_strings_uses_tokenizer(self):
        blocker = LengthFilter(0.5, tokenizer=QgramTokenizer(q=3))
        blocker.fit_strings(["ab", "abcdef"])
        assert blocker.is_fitted
        assert blocker.num_tuples == 2
