"""Declarative fast-path tests: pushdown, in-SQL pruning, shared cores.

Three guarantees of the declarative fast path are exercised here:

* **Exactness** -- the ORDER BY/LIMIT top-k pushdown and the in-SQL
  length/prefix candidate pruning must return exactly what the unpruned,
  unpushed path (``fastpath=False``) returns, property-tested over random
  corpora, queries and thresholds on both backends.
* **Shared-core reuse** -- fitting a second declarative predicate on an
  already-prepared backend must reuse the shared token tables instead of
  re-materializing them (counted in executed preprocessing statements).
* **Parameterized statements** -- query strings reach the SQL through bind
  parameters end to end, so quotes and SQL metacharacters in the data are
  inert (regression: they used to be string-interpolated literals).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import MemoryBackend, SQLiteBackend
from repro.declarative import clear_shared_state, make_declarative_predicate
from repro.engine import SimilarityEngine
from repro.engine.plan import RecordingBackend, sql_statements
from repro.obs import Observability, Tracer

#: Small token-y alphabet with spaces and quotes (quotes must be inert).
words = st.sampled_from(
    ["MORGAN", "STANLEY", "GROUP", "O'REILLY", "AT&T", "INC", "HOTEL", "BEIJING"]
)
strings = st.lists(words, min_size=1, max_size=4).map(" ".join)
corpora = st.lists(strings, min_size=2, max_size=12)

BACKENDS = [MemoryBackend, SQLiteBackend]


def _pair(name, backend_cls, corpus, **kwargs):
    """A (fast, baseline) predicate pair fitted on separate backends."""
    fast = make_declarative_predicate(name, backend=backend_cls(), **kwargs)
    fast.preprocess(corpus)
    slow = make_declarative_predicate(
        name, backend=backend_cls(), fastpath=False, **kwargs
    )
    slow.preprocess(corpus)
    return fast, slow


class TestPushdownExactness:
    @settings(max_examples=25, deadline=None)
    @given(corpus=corpora, query=strings, k=st.integers(min_value=0, max_value=6))
    def test_order_by_limit_pushdown_equals_full_rank(self, corpus, query, k):
        for backend_cls in BACKENDS:
            for name in ("jaccard", "bm25", "weighted_match"):
                fast, slow = _pair(name, backend_cls, corpus)
                assert fast.rank(query, limit=k) == slow.rank(query, limit=k), (
                    name,
                    backend_cls.__name__,
                )
                assert fast.top_k(query, k) == slow.rank(query, limit=k)

    @settings(max_examples=25, deadline=None)
    @given(
        corpus=corpora,
        query=strings,
        threshold=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_pruned_select_equals_unpruned(self, corpus, query, threshold):
        """Length/prefix bounds pushed into the Jaccard SQL stay exact."""
        for backend_cls in BACKENDS:
            fast, slow = _pair("jaccard", backend_cls, corpus)
            assert fast.select(query, threshold) == slow.select(query, threshold), (
                backend_cls.__name__,
                threshold,
            )

    def test_pruned_select_scores_fewer_candidates(self):
        from repro.datagen import make_dataset

        corpus = make_dataset("CU1", size=120, num_clean=30, seed=9).strings
        fast, slow = _pair("jaccard", SQLiteBackend, corpus)
        fast_results = fast.select(corpus[3], 0.7)
        fast_candidates = fast.last_num_candidates
        slow_results = slow.select(corpus[3], 0.7)
        assert fast_results == slow_results
        assert fast_candidates < slow.last_num_candidates
        assert fast.last_sql_stats.fastpath == ("length-filter", "prefix-filter")

    @settings(max_examples=15, deadline=None)
    @given(corpus=corpora, queries=st.lists(strings, min_size=1, max_size=4))
    def test_batched_scores_equal_sequential(self, corpus, queries):
        for backend_cls in BACKENDS:
            for name in ("intersect", "cosine", "lm", "edit_distance"):
                fast, slow = _pair(name, backend_cls, corpus)
                batched = fast.run_many(queries, op="rank")
                for query, batch in zip(queries, batched):
                    expected = slow.rank(query)
                    assert [m.tid for m in batch] == [m.tid for m in expected]
                    for got, want in zip(batch, expected):
                        assert got.score == pytest.approx(
                            want.score, rel=1e-9, abs=1e-12
                        )


class TestSharedCores:
    def _captured_statements(self, obs, fit):
        """SQL statements emitted by ``fit``, captured as sql.statement spans."""
        tracer = Tracer()
        with obs.activate(tracer):
            with tracer.span("capture"):
                fit()
        return sql_statements(tracer.last_root)

    @pytest.mark.parametrize("backend_cls", BACKENDS)
    def test_second_predicate_reuses_shared_token_tables(self, backend_cls):
        """Acceptance: fitting a second declarative predicate on an
        already-prepared backend reuses the shared token tables."""
        corpus = [f"COMPANY {i} HOLDINGS {i % 5} LLC" for i in range(40)]
        obs = Observability()
        recorder = RecordingBackend(backend_cls(), obs=obs)
        first = self._captured_statements(
            obs,
            lambda: make_declarative_predicate("bm25", backend=recorder).preprocess(corpus),
        )
        second = self._captured_statements(
            obs,
            lambda: make_declarative_predicate("cosine", backend=recorder).preprocess(corpus),
        )
        third = self._captured_statements(
            obs,
            lambda: make_declarative_predicate(
                "weighted_match", backend=recorder
            ).preprocess(corpus),
        )
        # The first fit pays the core (BASE_TABLE/BASE_TOKENS/stats tables);
        # later fits only materialize their own small weight tables.
        assert len(second) < len(first) and len(third) < len(first)
        assert not any(
            "BASE_TOKENS" in statement and ("CREATE TABLE" in statement or "bulk load" in statement)
            for statement in second + third
        ), (second, third)

    def test_refitting_same_predicate_reuses_core(self):
        corpus = ["ALPHA ONE", "BETA TWO", "GAMMA THREE"]
        obs = Observability()
        recorder = RecordingBackend(SQLiteBackend(), obs=obs)
        predicate = make_declarative_predicate("jaccard", backend=recorder)
        predicate.preprocess(corpus)
        refit = self._captured_statements(obs, lambda: predicate.preprocess(corpus))
        assert not any("CREATE TABLE" in statement for statement in refit), refit

    def test_two_corpora_coexist_without_clobbering(self):
        backend = SQLiteBackend()
        first = make_declarative_predicate("jaccard", backend=backend)
        first.preprocess(["MORGAN STANLEY", "GOLDMAN SACHS"])
        second = make_declarative_predicate("jaccard", backend=backend)
        second.preprocess(["HOTEL BEIJING", "HOTEL SHANGHAI"])
        # Namespaced cores: the first predicate still answers from its own
        # tables after the second fit, with no refit required.
        assert not first.tables_stale()
        assert first.rank("MORGAN STANLEY")[0].tid == 0
        assert second.rank("HOTEL BEIJING")[0].tid == 0
        assert first.core.prefix != second.core.prefix

    def test_parameter_variants_coexist_without_staleness(self):
        from repro.text.weights import BM25Parameters

        backend = SQLiteBackend()
        corpus = ["MORGAN STANLEY GROUP", "MORGAN HOLDINGS", "STANLEY INC"]
        default = make_declarative_predicate("bm25", backend=backend)
        default.preprocess(corpus)
        expected = default.rank("MORGAN STANLEY")
        tuned = make_declarative_predicate(
            "bm25", backend=backend, params=BM25Parameters(k1=0.4, b=0.9)
        )
        tuned.preprocess(corpus)
        # Parameter-signed features get variant-named tables, so the two
        # instances coexist on one backend: neither goes stale, both answer
        # from their own weights, and alternating queries never refit.
        assert not default.tables_stale() and not tuned.tables_stale()
        assert default._weights_table != tuned._weights_table
        assert default.rank("MORGAN STANLEY") == expected
        assert tuned.rank("MORGAN STANLEY")  # answers, from its own table
        assert not default.tables_stale()

    def test_clear_shared_state_forces_rematerialization(self):
        backend = SQLiteBackend()
        predicate = make_declarative_predicate("jaccard", backend=backend)
        predicate.preprocess(["ALPHA BETA", "GAMMA DELTA"])
        clear_shared_state(backend)
        assert predicate.tables_stale()
        assert predicate.rank("ALPHA BETA")[0].tid == 0  # self-heals


class TestParameterizedQueries:
    QUOTED_CORPUS = [
        "O'Reilly & Sons",
        "It's a 'test' -- DROP TABLE BASE_TOKENS",
        'Quote "Unquote" Partners',
        "Plain Company Inc",
    ]

    @pytest.mark.parametrize("backend_cls", BACKENDS)
    def test_edit_distance_handles_quotes_end_to_end(self, backend_cls):
        predicate = make_declarative_predicate("edit_distance", backend=backend_cls())
        predicate.preprocess(self.QUOTED_CORPUS)
        ranking = predicate.rank("O'Reilly & Sons")
        assert ranking[0].tid == 0 and ranking[0].score == 1.0
        selected = predicate.select("It's a 'test' -- DROP TABLE BASE_TOKENS", 0.9)
        assert [match.tid for match in selected] == [1]
        batched = predicate.run_many(
            ["O'Reilly & Sons", 'Quote "Unquote" Partners'], op="rank"
        )
        assert batched[0][0].tid == 0 and batched[1][0].tid == 2

    def test_engine_run_with_quoted_queries(self):
        engine = SimilarityEngine(realization="declarative", backend="sqlite")
        query = engine.from_strings(self.QUOTED_CORPUS).predicate("edit_distance")
        assert query.top_k("O'Reilly & Sons", 1)[0].tid == 0

    def test_memory_engine_rejects_unbound_placeholders(self):
        backend = MemoryBackend()
        backend.create_table("t", ["x TEXT"])
        from repro.dbengine.errors import ParseError

        with pytest.raises(ParseError):
            backend.query("SELECT x FROM t WHERE x = ?", [])
        with pytest.raises(ParseError):
            backend.query("SELECT x FROM t WHERE x = ?", ["a", "b"])
