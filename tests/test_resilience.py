"""Unit tests of the resilience primitives and their serving-layer wiring.

The state machines (retry backoff, deadlines, circuit breaker) run on fake
clocks and recorded sleeps, so every schedule is asserted exactly; the
serving tests drive :class:`SimilarityService` with deterministic injected
faults and check the degraded-mode envelopes (500 / 503 + ``Retry-After``)
and the bounded, event-based drain.
"""

from __future__ import annotations

import asyncio
import pickle
import socket
import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Observability
from repro.resilience import (
    BREAKER_STATES,
    BreakerOpen,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    FaultRule,
    InjectedFault,
    NOOP_INJECTOR,
    ResilienceStats,
    RetryPolicy,
    check_deadline,
    current_deadline,
    deadline_scope,
    faults_from_env,
    parse_fault_spec,
)
from repro.serve import ServeClient, ServeError, ServeServer, SimilarityService


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# fault rules and injectors
# ---------------------------------------------------------------------------


class TestFaultRules:
    def test_once_fires_exactly_once(self):
        rule = FaultRule("shard.task", once=True)
        assert [rule.fire(i) for i in (1, 2, 3)] == [True, False, False]

    def test_nth_fires_on_the_nth_call_only(self):
        rule = FaultRule("shard.task", nth=3)
        assert [rule.fire(i) for i in (1, 2, 3, 4)] == [False, False, True, False]

    def test_probability_stream_is_seeded(self):
        def fires(seed: int) -> list:
            rule = FaultRule("shard.task", p=0.5, seed=seed)
            return [rule.fire(i) for i in range(1, 33)]

        assert fires(7) == fires(7)
        assert any(fires(7)) and not all(fires(7))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},  # no trigger
            {"once": True, "nth": 2},  # two triggers
            {"nth": 0},
            {"p": 0.0},
            {"p": 1.5},
            {"once": True, "action": "explode"},
        ],
    )
    def test_invalid_rules_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultRule("shard.task", **kwargs)

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("warp.core", once=True)

    def test_injector_counts_calls_and_fires(self):
        injector = FaultInjector([FaultRule("shard.task", nth=2)])
        assert injector.active
        assert injector.directive("shard.task") is None
        assert injector.directive("shard.task") == "raise"
        assert injector.directive("shard.task") is None
        assert injector.calls("shard.task") == 3
        assert injector.fired("shard.task") == 1

    def test_check_raises_injected_fault(self):
        injector = FaultInjector([FaultRule("sql.statement", once=True)])
        with pytest.raises(InjectedFault):
            injector.check("sql.statement")
        injector.check("sql.statement")  # spent: no-op

    def test_noop_injector_is_inactive(self):
        assert not NOOP_INJECTOR.active
        assert NOOP_INJECTOR.directive("shard.task") is None

    def test_injector_pickles(self):
        injector = FaultInjector([FaultRule("shard.task", once=True)])
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.active
        assert clone.directive("shard.task") == "raise"

    def test_parse_fault_spec(self):
        injector = parse_fault_spec(
            "shard.task:nth=3:action=crash; sql.statement:p=0.25:seed=9"
        )
        rules = injector._rules
        assert set(rules) == {"shard.task", "sql.statement"}
        assert rules["shard.task"][0].action == "crash"

    @pytest.mark.parametrize(
        "spec",
        ["shard.task", "shard.task:bogus", "shard.task:frob=1", "warp:once"],
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            parse_fault_spec(spec)

    def test_faults_from_env(self):
        assert not faults_from_env({}).active
        assert not faults_from_env({"REPRO_FAULTS": "  "}).active
        injector = faults_from_env({"REPRO_FAULTS": "serve.batch:once"})
        assert injector.active
        assert injector.directive("serve.batch") == "raise"


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def make(self, **kwargs):
        sleeps: list = []
        kwargs.setdefault("sleep", sleeps.append)
        return RetryPolicy(**kwargs), sleeps

    def test_backoff_schedule_is_exponential_capped_and_seeded(self):
        policy_a = RetryPolicy(backoff=0.1, multiplier=2.0, max_backoff=0.3, seed=5)
        policy_b = RetryPolicy(backoff=0.1, multiplier=2.0, max_backoff=0.3, seed=5)
        delays = [policy_a.delay(i) for i in (1, 2, 3, 4)]
        assert delays == [policy_b.delay(i) for i in (1, 2, 3, 4)]
        # Base 0.1, 0.2, then capped at 0.3; jitter adds at most 10%.
        assert 0.1 <= delays[0] <= 0.11
        assert 0.2 <= delays[1] <= 0.22
        assert 0.3 <= delays[2] <= 0.33
        assert 0.3 <= delays[3] <= 0.33

    def test_run_retries_then_succeeds(self):
        policy, sleeps = self.make(max_attempts=3, backoff=0.01, jitter=0.0)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise InjectedFault("transient")
            return "ok"

        seen = []
        result = policy.run(flaky, on_retry=lambda n, exc: seen.append(n))
        assert result == "ok"
        assert len(attempts) == 3
        assert seen == [1, 2]
        assert sleeps == [0.01, 0.02]

    def test_run_exhausts_and_raises(self):
        policy, sleeps = self.make(max_attempts=2, jitter=0.0)

        def always():
            raise InjectedFault("never heals")

        with pytest.raises(InjectedFault):
            policy.run(always)
        assert len(sleeps) == 1  # one retry, then the final failure propagates

    def test_non_matching_exceptions_propagate_immediately(self):
        policy, sleeps = self.make(max_attempts=5)

        def typo():
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            policy.run(typo, retry_on=(InjectedFault,))
        assert sleeps == []

    def test_deadline_exceeded_is_never_retried(self):
        policy, sleeps = self.make(max_attempts=5)

        def out_of_time():
            raise DeadlineExceeded("budget gone")

        with pytest.raises(DeadlineExceeded):
            policy.run(out_of_time)
        assert sleeps == []

    def test_backoff_cannot_outlive_the_deadline(self):
        clock = FakeClock()
        policy = RetryPolicy(
            max_attempts=5, backoff=0.01, jitter=0.0, sleep=lambda s: clock.advance(5.0)
        )
        with deadline_scope(Deadline(1.0, clock=clock)):
            with pytest.raises(DeadlineExceeded):
                policy.run(lambda: (_ for _ in ()).throw(InjectedFault("x")))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1)


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_bounded_deadline_expires_on_the_fake_clock(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired()
        deadline.check()
        clock.advance(2.5)
        assert deadline.expired()
        assert deadline.remaining() == pytest.approx(-0.5)
        with pytest.raises(DeadlineExceeded):
            deadline.check()

    def test_unbounded_deadline_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.check()

    def test_combine_takes_the_latest(self):
        clock = FakeClock()
        early = Deadline(1.0, clock=clock)
        late = Deadline(9.0, clock=clock)
        assert Deadline.combine((early, late)) is late
        assert Deadline.combine((late, early)) is late
        assert Deadline.combine(()) is None
        assert Deadline.combine((early, None)) is None
        assert Deadline.combine((early, Deadline(None))) is None

    def test_scope_sets_and_restores_the_ambient_deadline(self):
        clock = FakeClock()
        assert current_deadline() is None
        check_deadline()  # no scope: free no-op
        deadline = Deadline(1.0, clock=clock)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
            clock.advance(2.0)
            with pytest.raises(DeadlineExceeded):
                check_deadline()
        assert current_deadline() is None

    def test_scopes_nest(self):
        outer, inner = Deadline(None), Deadline(None)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, threshold=3, reset=10.0):
        clock = FakeClock()
        return CircuitBreaker(
            failure_threshold=threshold, reset_timeout=reset, clock=clock
        ), clock

    def test_trips_open_after_threshold_failures(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(BreakerOpen) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after == pytest.approx(10.0)

    def test_success_resets_the_failure_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_retry_after_shrinks_as_the_window_elapses(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(4.0)
        with pytest.raises(BreakerOpen) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after == pytest.approx(6.0)

    def test_half_open_admits_one_probe_and_success_closes(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()  # the probe
        assert breaker.state == "half_open"
        with pytest.raises(BreakerOpen):
            breaker.allow()  # concurrent caller must not stampede
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.allow()

    def test_failed_probe_reopens_for_a_full_window(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.9)
        with pytest.raises(BreakerOpen):
            breaker.allow()

    def test_state_values_match_the_gauge_encoding(self):
        breaker, clock = self.make(threshold=1)
        assert breaker.state_value == BREAKER_STATES["closed"] == 0
        breaker.record_failure()
        assert breaker.state_value == BREAKER_STATES["open"] == 1
        clock.advance(10.0)
        breaker.allow()
        assert breaker.state_value == BREAKER_STATES["half_open"] == 2

    def test_validation_and_pickle(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0)
        clone = pickle.loads(pickle.dumps(CircuitBreaker()))
        assert clone.state == "closed"


# ---------------------------------------------------------------------------
# resilience stats
# ---------------------------------------------------------------------------


class TestResilienceStats:
    def test_merge_and_events(self):
        stats = ResilienceStats(executor="thread", tasks=4)
        assert stats.events == 0
        stats.merge(ResilienceStats(tasks=2, task_retries=1, pool_rebuilds=1))
        assert stats.tasks == 6
        assert stats.task_retries == 1
        assert stats.events == 2

    def test_publish_skips_zero_counters(self):
        metrics = MetricsRegistry()
        ResilienceStats(tasks=3, task_retries=2, faults_injected=1).publish(metrics)
        assert metrics.value("resilience.task_retries") == 2
        assert metrics.value("resilience.faults_injected") == 1
        assert "resilience.pool_rebuilds" not in metrics.to_dict()["counters"]


# ---------------------------------------------------------------------------
# degraded-mode serving
# ---------------------------------------------------------------------------

ROWS = [
    "Morgan Stanley Group Inc.",
    "Goldman Sachs Group",
    "AT&T Incorporated",
    "AT&T Inc.",
    "IBM Incorporated",
    "Pacific Gas and Electric Company",
]


def make_service(**kwargs) -> SimilarityService:
    kwargs.setdefault("batch_window", 0.002)
    kwargs.setdefault("obs", Observability(metrics=MetricsRegistry()))
    return SimilarityService(**kwargs)


def top_k_payload(corpus_id: str, timeout: float = 5.0) -> dict:
    return {
        "corpus_id": corpus_id,
        "text": "Morgn Stanley",
        "op": "top_k",
        "k": 3,
        "timeout": timeout,
    }


class TestDegradedServing:
    def test_unexpected_engine_error_becomes_500_envelope(self):
        service = make_service(faults=parse_fault_spec("serve.batch:once"))
        corpus_id, _, _ = service.register_corpus(ROWS)
        failed = asyncio.run(service.handle(top_k_payload(corpus_id)))
        assert failed["status"] == 500
        assert failed["error"] == "internal"
        assert "InjectedFault" in failed["message"]
        assert service.obs.metrics.value("serve.errors_total") == 1
        # The fault was one-shot: the service answers normally afterwards.
        healed = asyncio.run(service.handle(top_k_payload(corpus_id)))
        assert healed["status"] == 200
        assert healed["matches"]
        service.close()

    def test_breaker_trips_rejects_fast_then_recovers(self):
        service = make_service(
            faults=parse_fault_spec("serve.batch:nth=1;serve.batch:nth=2"),
            breaker_threshold=2,
            breaker_reset=1.0,
        )
        corpus_id, _, _ = service.register_corpus(ROWS)
        for _ in range(2):  # two failing batches trip the breaker
            assert asyncio.run(service.handle(top_k_payload(corpus_id)))["status"] == 500
        gauge = f"serve.breaker_state.{corpus_id}"
        assert service.obs.metrics.gauge_value(gauge) == 1  # open
        rejected = asyncio.run(service.handle(top_k_payload(corpus_id)))
        assert rejected["status"] == 503
        assert rejected["error"] == "breaker_open"
        assert 0 < rejected["retry_after"] <= 1.0
        assert service.obs.metrics.value("serve.breaker_rejections_total") == 1
        time.sleep(1.05)  # let the reset window elapse; next request probes
        probed = asyncio.run(service.handle(top_k_payload(corpus_id)))
        assert probed["status"] == 200
        assert service.obs.metrics.gauge_value(gauge) == 0  # closed again
        service.close()

    def test_breaker_isolates_corpora(self):
        service = make_service(
            faults=parse_fault_spec("serve.batch:nth=1"),
            breaker_threshold=1,
            breaker_reset=30.0,
        )
        sick_id, _, _ = service.register_corpus(ROWS)
        healthy_id, _, _ = service.register_corpus(ROWS[:3])
        assert asyncio.run(service.handle(top_k_payload(sick_id)))["status"] == 500
        assert asyncio.run(service.handle(top_k_payload(sick_id)))["status"] == 503
        assert asyncio.run(service.handle(top_k_payload(healthy_id)))["status"] == 200
        service.close()

    def test_deadline_rides_into_the_batch_scope(self):
        service = make_service()
        corpus_id, _, _ = service.register_corpus(ROWS)
        seen: list = []
        original = service._execute_batch

        def spy(requests):
            seen.append([request.deadline for request in requests])
            return original(requests)

        service._execute_batch = spy
        assert asyncio.run(service.handle(top_k_payload(corpus_id, timeout=7.5)))[
            "status"
        ] == 200
        (deadlines,) = seen
        assert len(deadlines) == 1
        assert deadlines[0] is not None
        assert 0 < deadlines[0].remaining() <= 7.5
        service.close()

    def test_timeout_during_batch_is_504_and_leaves_service_healthy(self):
        service = make_service()
        corpus_id, _, _ = service.register_corpus(ROWS)
        original = service._execute_batch
        stall = [0.2]

        def slow(requests):
            time.sleep(stall[0])
            return original(requests)

        service._execute_batch = slow

        async def run():
            timed_out = await service.handle(top_k_payload(corpus_id, timeout=0.05))
            # The abandoned batch is still running on its worker thread; the
            # late flush must skip the cancelled waiter without raising
            # InvalidStateError, and the next request must succeed.
            await asyncio.sleep(0.3)
            stall[0] = 0.0
            healthy = await service.handle(top_k_payload(corpus_id, timeout=5.0))
            return timed_out, healthy

        timed_out, healthy = asyncio.run(run())
        assert timed_out["status"] == 504
        assert timed_out["error"] == "timeout"
        assert healthy["status"] == 200
        service.close()

    def test_drain_is_bounded_and_counts_abandoned_work(self):
        service = make_service(drain_timeout=0.05)
        corpus_id, _, _ = service.register_corpus(ROWS)
        original = service._execute_batch

        def slow(requests):
            time.sleep(0.4)
            return original(requests)

        service._execute_batch = slow

        async def run():
            pending = asyncio.create_task(
                service.handle(top_k_payload(corpus_id, timeout=10.0))
            )
            await asyncio.sleep(0.1)  # let it get admitted and into the batch
            started = time.monotonic()
            await service.drain()
            drained_in = time.monotonic() - started
            envelope = await pending  # the stuck request still completes
            return drained_in, envelope

        drained_in, envelope = asyncio.run(run())
        assert drained_in < 0.35  # did not wait out the 0.4s batch
        assert service.obs.metrics.value("serve.drain_abandoned_total") >= 1
        assert envelope["status"] == 200
        service.close()

    def test_unbounded_drain_still_completes_when_idle(self):
        service = make_service()
        service.register_corpus(ROWS)
        asyncio.run(service.drain())
        assert service.draining
        service.close()


# ---------------------------------------------------------------------------
# client retries
# ---------------------------------------------------------------------------


class TestClientRetries:
    def closed_port(self) -> int:
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_no_retries_by_default(self):
        client = ServeClient("127.0.0.1", self.closed_port(), timeout=1.0)
        with pytest.raises(OSError):
            client.request("GET", "/healthz")
        client.close()

    def test_bounded_retry_on_connection_errors(self):
        sleeps: list = []
        client = ServeClient(
            "127.0.0.1",
            self.closed_port(),
            timeout=1.0,
            retries=2,
            backoff=0.001,
            sleep=sleeps.append,
        )
        with pytest.raises(OSError):
            client.request("GET", "/healthz")
        assert len(sleeps) == 2  # initial try + exactly `retries` more
        client.close()

    def test_retry_validation(self):
        with pytest.raises(ValueError):
            ServeClient("127.0.0.1", 1, retries=-1)


# ---------------------------------------------------------------------------
# client retries against a flaky in-process server
# ---------------------------------------------------------------------------


class _ServerThread:
    """Runs a ServeServer on a private event loop in a daemon thread."""

    def __init__(self, service: SimilarityService):
        self.service = service
        self.host: str = ""
        self.port: int = 0
        self._loop = None
        self._server = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        assert self._ready.wait(timeout=10), "server failed to start"
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._server is not None:
            self._loop.call_soon_threadsafe(self._server.request_stop)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "server thread failed to stop"

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = ServeServer(self.service, port=0)
        self.host, self.port = await self._server.start()
        self._ready.set()
        await self._server.serve_until_stopped()


class TestClientRetriesEndToEnd:
    def trip_breaker(self, client: ServeClient, corpus_id: str) -> None:
        with pytest.raises(ServeError) as excinfo:
            client.query(corpus_id, "Morgn Stanley", op="top_k", k=3)
        assert excinfo.value.status == 500  # the injected batch failure

    def test_client_honors_retry_after_and_heals(self):
        service = make_service(
            faults=parse_fault_spec("serve.batch:nth=1"),
            breaker_threshold=1,
            breaker_reset=0.2,
        )
        with _ServerThread(service) as server:
            sleeps: list = []

            def sleeper(seconds: float) -> None:
                sleeps.append(seconds)
                time.sleep(seconds)

            client = ServeClient(
                server.host, server.port, timeout=10.0, retries=3, sleep=sleeper
            )
            corpus_id = client.register_corpus(ROWS)
            self.trip_breaker(client, corpus_id)
            # The breaker is open: the next query gets a retryable 503 with a
            # Retry-After hint; the client sleeps it out and the probe wins.
            envelope = client.query(corpus_id, "Morgn Stanley", op="top_k", k=3)
            assert envelope["status"] == 200
            assert sleeps and 0 < sleeps[0] <= 0.2
            client.close()

    def test_breaker_503_carries_retry_after_on_the_wire(self):
        import http.client
        import json

        service = make_service(
            faults=parse_fault_spec("serve.batch:nth=1"),
            breaker_threshold=1,
            breaker_reset=30.0,
        )
        with _ServerThread(service) as server:
            client = ServeClient(server.host, server.port)
            corpus_id = client.register_corpus(ROWS)
            self.trip_breaker(client, corpus_id)
            with pytest.raises(ServeError) as excinfo:
                client.query(corpus_id, "Morgn Stanley", op="top_k", k=3)
            assert excinfo.value.status == 503
            assert excinfo.value.error == "breaker_open"
            assert excinfo.value.retry_after is not None
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=10
            )
            connection.request(
                "POST",
                "/query",
                json.dumps(
                    {"corpus_id": corpus_id, "text": "x", "op": "top_k", "k": 3}
                ).encode("utf-8"),
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 503
            assert int(response.getheader("Retry-After")) >= 1
            assert body["retry_after"] > 0
            connection.close()
            client.close()
