"""End-to-end integration tests reproducing the paper's qualitative findings
on small generated datasets (the full-size experiments live in benchmarks/)."""

from __future__ import annotations

import pytest

from repro.core import ApproximateSelector
from repro.datagen import make_dataset
from repro.eval import ExperimentRunner, IdfPruner


@pytest.fixture(scope="module")
def dirty_dataset():
    """A scaled-down CU1 (dirty) dataset."""
    return make_dataset("CU1", size=400, num_clean=60, seed=7)


@pytest.fixture(scope="module")
def abbreviation_dataset():
    """A scaled-down F1 (abbreviation errors only) dataset."""
    return make_dataset("F1", size=300, num_clean=60, seed=7)


@pytest.fixture(scope="module")
def swap_dataset():
    """A scaled-down F2 (token swap errors only) dataset."""
    return make_dataset("F2", size=300, num_clean=60, seed=7)


class TestPaperFindings:
    def test_weighted_predicates_handle_abbreviations(self, abbreviation_dataset):
        """Table 5.5: weighted predicates have (near-)perfect accuracy on F1
        and do at least as well as the unweighted overlap predicates."""
        runner = ExperimentRunner(abbreviation_dataset, "F1")
        bm25 = runner.evaluate("bm25", num_queries=30)
        jaccard = runner.evaluate("jaccard", num_queries=30)
        assert bm25.mean_average_precision >= 0.9
        assert bm25.mean_average_precision >= jaccard.mean_average_precision - 1e-9

    def test_qgram_predicates_handle_token_swaps(self, swap_dataset):
        """Table 5.5: q-gram predicates are robust to token swaps, GES is not."""
        runner = ExperimentRunner(swap_dataset, "F2")
        bm25 = runner.evaluate("bm25", num_queries=30)
        ges = runner.evaluate("ges", num_queries=30)
        assert bm25.mean_average_precision >= 0.95
        assert bm25.mean_average_precision >= ges.mean_average_precision

    def test_probabilistic_predicates_lead_on_dirty_data(self, dirty_dataset):
        """Figure 5.1(c): BM25/HMM/LM beat the unweighted overlap predicates
        and edit distance on dirty data."""
        runner = ExperimentRunner(dirty_dataset, "CU1")
        names = ["bm25", "hmm", "lm", "intersect", "edit_distance"]
        results = {
            name: runner.evaluate(name, num_queries=30).mean_average_precision
            for name in names
        }
        best_probabilistic = max(results["bm25"], results["hmm"], results["lm"])
        assert best_probabilistic > results["intersect"]
        assert best_probabilistic > results["edit_distance"]

    def test_pruning_speeds_up_without_large_accuracy_loss(self, dirty_dataset):
        """Section 5.6: moderate IDF pruning keeps accuracy within a few points."""
        runner = ExperimentRunner(dirty_dataset, "CU1")
        baseline = runner.evaluate("jaccard", num_queries=25)
        pruner = IdfPruner(0.25)
        pruned_predicate = pruner.apply("jaccard", dirty_dataset.strings)
        pruned = runner.evaluate(pruned_predicate, num_queries=25)
        assert pruner.retained_fraction < 1.0
        assert pruned.mean_average_precision >= baseline.mean_average_precision - 0.05


class TestSelectorWorkflow:
    def test_deduplication_workflow(self, dirty_dataset):
        """The quickstart workflow: index a dirty relation, look up a record,
        and retrieve its duplicates."""
        selector = ApproximateSelector(dirty_dataset.strings, predicate="bm25")
        query_tid = 5
        query_text = dirty_dataset.strings[query_tid]
        relevant = set(dirty_dataset.relevant_for(query_tid))
        top = selector.top_k(query_text, k=len(relevant))
        found = {result.tid for result in top}
        # At least half the duplicates are found in the top-|cluster| results.
        assert len(found & relevant) >= max(1, len(relevant) // 2)

    def test_threshold_selection_over_generated_data(self, dirty_dataset):
        selector = ApproximateSelector(dirty_dataset.strings, predicate="jaccard")
        results = selector.select(dirty_dataset.strings[0], threshold=0.99)
        assert any(result.tid == 0 for result in results)

    def test_declarative_and_direct_agree_on_generated_data(self, dirty_dataset):
        from repro.declarative import make_declarative_predicate

        strings = dirty_dataset.strings[:120]
        direct = ApproximateSelector(strings, predicate="bm25")
        declarative = make_declarative_predicate("bm25").preprocess(strings)
        query = strings[10]
        direct_top = [r.tid for r in direct.top_k(query, k=5)]
        declarative_top = [s.tid for s in declarative.rank(query, limit=5)]
        assert direct_top == declarative_top
