"""Unit tests for the SQL backends (memory engine and SQLite)."""

from __future__ import annotations

import pytest

from repro.backends import MemoryBackend, SQLiteBackend


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, memory_backend, sqlite_backend):
    return memory_backend if request.param == "memory" else sqlite_backend


class TestBackendInterface:
    def test_create_insert_query(self, backend):
        backend.create_table("t", ["tid INTEGER", "token TEXT"])
        assert backend.has_table("t")
        inserted = backend.insert_rows("t", [(1, "A"), (2, "B")])
        assert inserted == 2
        rows = backend.query("SELECT tid FROM t WHERE token = 'B'")
        assert rows == [(2,)]
        assert backend.row_count("t") == 2

    def test_recreate_table(self, backend):
        backend.create_table("t", ["a INTEGER"])
        backend.insert_rows("t", [(1,)])
        backend.recreate_table("t", ["a INTEGER", "b TEXT"])
        assert backend.row_count("t") == 0
        backend.insert_rows("t", [(1, "x")])
        assert backend.query("SELECT b FROM t") == [("x",)]

    def test_drop_missing_table_if_exists(self, backend):
        backend.drop_table("never_created", if_exists=True)
        assert not backend.has_table("never_created")

    def test_insert_select(self, backend):
        backend.create_table("src", ["x INTEGER"])
        backend.insert_rows("src", [(1,), (2,), (3,)])
        backend.create_table("dst", ["x INTEGER"])
        backend.execute("INSERT INTO dst SELECT x FROM src WHERE x > 1")
        assert backend.row_count("dst") == 2

    def test_empty_bulk_insert(self, backend):
        backend.create_table("t", ["a INTEGER"])
        assert backend.insert_rows("t", []) == 0

    def test_group_by_aggregation(self, backend):
        backend.create_table("tok", ["tid INTEGER", "token TEXT"])
        backend.insert_rows("tok", [(1, "A"), (1, "B"), (2, "A")])
        rows = sorted(backend.query("SELECT tid, COUNT(*) FROM tok GROUP BY tid"))
        assert rows == [(1, 2), (2, 1)]

    def test_math_functions_consistent(self, backend):
        row = backend.query("SELECT LOG(10.0), EXP(1.0), POWER(2.0, 3.0), SQRT(9.0)")[0]
        assert row[0] == pytest.approx(2.302585, abs=1e-5)  # natural log
        assert row[1] == pytest.approx(2.718281, abs=1e-5)
        assert row[2] == pytest.approx(8.0)
        assert row[3] == pytest.approx(3.0)

    def test_default_udfs_registered(self, backend):
        row = backend.query("SELECT JAROWINKLER('MARTHA', 'MARHTA'), EDITSIM('ABC', 'ABD')")[0]
        assert row[0] == pytest.approx(0.9611, abs=1e-3)
        assert row[1] == pytest.approx(2 / 3, abs=1e-9)

    def test_custom_udf(self, backend):
        backend.register_function("PLUS_ONE", 1, lambda x: x + 1)
        assert backend.query("SELECT PLUS_ONE(41)")[0][0] == 42


class TestBackendParity:
    """The two backends must produce identical results for the SQL the
    declarative framework emits."""

    STATEMENTS = [
        ("CREATE TABLE base_tokens (tid INTEGER, token TEXT)", None),
        ("CREATE TABLE query_tokens (token TEXT)", None),
    ]
    BASE_ROWS = [(1, "AB"), (1, "BC"), (1, "AB"), (2, "AB"), (2, "CD"), (3, "XY")]
    QUERY_ROWS = [("AB",), ("BC",)]

    QUERIES = [
        "SELECT R1.tid, COUNT(*) FROM base_tokens R1, query_tokens R2 "
        "WHERE R1.token = R2.token GROUP BY R1.tid",
        "SELECT tid, COUNT(DISTINCT token) FROM base_tokens GROUP BY tid",
        "SELECT token FROM base_tokens WHERE tid IN (SELECT tid FROM base_tokens WHERE token = 'CD')",
        "SELECT t.tid, COUNT(*) * 1.0 / 2 FROM base_tokens t GROUP BY t.tid HAVING COUNT(*) >= 2",
        "SELECT DISTINCT tid FROM base_tokens WHERE token NOT IN (SELECT token FROM query_tokens)",
    ]

    def test_same_results(self, memory_backend, sqlite_backend):
        for backend in (memory_backend, sqlite_backend):
            backend.create_table("base_tokens", ["tid INTEGER", "token TEXT"])
            backend.create_table("query_tokens", ["token TEXT"])
            backend.insert_rows("base_tokens", self.BASE_ROWS)
            backend.insert_rows("query_tokens", self.QUERY_ROWS)
        for sql in self.QUERIES:
            memory_rows = sorted(memory_backend.query(sql))
            sqlite_rows = sorted(sqlite_backend.query(sql))
            assert memory_rows == sqlite_rows, sql


class TestSQLiteSpecifics:
    def test_file_and_memory_modes(self, tmp_path):
        backend = SQLiteBackend(str(tmp_path / "test.db"))
        backend.create_table("t", ["a INTEGER"])
        backend.insert_rows("t", [(5,)])
        assert backend.query("SELECT a FROM t") == [(5,)]
        backend.close()

    def test_has_table_is_case_insensitive(self, sqlite_backend):
        sqlite_backend.create_table("MiXeD", ["a INTEGER"])
        assert sqlite_backend.has_table("mixed")

    def test_log_of_nonpositive_is_null(self, sqlite_backend):
        assert sqlite_backend.query("SELECT LOG(0)")[0][0] is None


class TestMemoryBackendSpecifics:
    def test_wraps_database(self, memory_backend):
        memory_backend.create_table("t", ["a INTEGER", "b TEXT"])
        table = memory_backend.database.table("t")
        assert table.column_names == ["a", "b"]

    def test_execute_returns_rows_for_select(self, memory_backend):
        memory_backend.create_table("t", ["a INTEGER"])
        memory_backend.insert_rows("t", [(1,)])
        assert memory_backend.execute("SELECT a FROM t") == [(1,)]
