"""Chaos suite: injected faults must heal bit-identically.

The exactness contract of the shard layer (pure tasks over immutable
fitted shards) is what makes self-healing *exact*: any schedule of
retries, pool rebuilds and serial fallbacks must return the same Match
lists -- same tids, same float scores, same order -- as an undisturbed
serial run.  Every test here drives a query under deterministic injected
faults (transient raises, worker crashes, broken pools) and compares
against the fault-free baseline, then checks the ``resilience.*``
accounting said what actually happened.
"""

from __future__ import annotations

import sys

import pytest

from repro.core import make_predicate
from repro.core import kernels
from repro.engine import SimilarityEngine
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Observability
from repro.resilience import (
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    FaultRule,
    InjectedFault,
    RetryPolicy,
    deadline_scope,
    parse_fault_spec,
)

ROWS = [
    "Morgan Stanley Group Inc.",
    "Goldman Sachs Group",
    "AT&T Incorporated",
    "IBM Incorporated",
    "AT&T Inc.",
    "Beijing Hotel",
    "Beijing Labs",
    "Hotel Beijing",
    "Stanley Morgan Group Incorporated",
    "Silicon Valley Group, Inc.",
    "Pacific Gas and Electric Company",
    "Granite Construction Incorporated",
]

QUERIES = ["Morgn Stanley", "AT&T Corp", "Beijing Htel"]


def make_engine(**kwargs) -> SimilarityEngine:
    """An engine with its own metrics registry (the default is shared
    process-wide, which would bleed counters across tests)."""
    engine = SimilarityEngine(**kwargs)
    engine.obs = Observability(metrics=MetricsRegistry())
    return engine

needs_fork = pytest.mark.skipif(
    sys.platform == "win32", reason="process executors need a POSIX platform"
)


def run_workload(query) -> list:
    """The comparison workload: top-k and select answers for every query."""
    results = [query.top_k(text, 5) for text in QUERIES]
    results += [query.select(text, 0.1) for text in QUERIES]
    return results


def baseline(predicate: str) -> list:
    """Fault-free serial, unsharded: the ground truth all runs must match."""
    engine = make_engine()
    try:
        return run_workload(engine.from_strings(ROWS).predicate(predicate))
    finally:
        engine.clear_cache()


# ---------------------------------------------------------------------------
# the chaos matrix: predicates x shard counts x executors
# ---------------------------------------------------------------------------


class TestChaosMatrix:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    @pytest.mark.parametrize("predicate", ["bm25", "jaccard"])
    def test_injected_faults_heal_bit_identically(
        self, predicate, num_shards, executor
    ):
        if executor == "process" and sys.platform == "win32":
            pytest.skip("process executors need a POSIX platform")
        # nth=1 guarantees at least one fault; the seeded p-rule adds more
        # chaos on a stream that replays identically on every run.
        injector = FaultInjector(
            [
                FaultRule("shard.task", nth=1),
                FaultRule("shard.task", p=0.25, seed=11),
            ]
        )
        engine = make_engine(faults=injector)
        try:
            query = (
                engine.from_strings(ROWS)
                .predicate(predicate)
                .shards(num_shards, executor=executor)
            )
            assert run_workload(query) == baseline(predicate)
        finally:
            engine.clear_cache()
        if num_shards == 1:
            return  # shards(1) restores unsharded execution: nothing to inject
        # The plan actually ran under fire, and every fault healed.
        assert injector.calls("shard.task") > 0
        assert injector.fired("shard.task") >= 1
        assert engine.obs.metrics.value("resilience.task_retries") > 0


# ---------------------------------------------------------------------------
# specific failure modes
# ---------------------------------------------------------------------------


class TestFailureModes:
    @needs_fork
    def test_worker_crash_mid_batch_rebuilds_pool(self):
        """A worker dying with ``os._exit`` breaks the pool; the executor
        rebuilds it once and re-runs the unfinished tasks bit-identically."""
        injector = parse_fault_spec("shard.task:once:action=crash")
        engine = make_engine(faults=injector)
        try:
            query = (
                engine.from_strings(ROWS)
                .predicate("bm25")
                .shards(2, executor="process")
            )
            assert run_workload(query) == baseline("bm25")
        finally:
            engine.clear_cache()
        metrics = engine.obs.metrics
        assert injector.fired("shard.task") == 1
        assert metrics.value("resilience.pool_rebuilds") == 1
        assert metrics.value("resilience.faults_injected") == 1

    def test_crash_demotes_to_raise_off_process_executors(self):
        """``action=crash`` on thread/serial executors must not kill the
        parent process -- it demotes to a transient raise and is retried."""
        for executor in ("serial", "thread"):
            injector = parse_fault_spec("shard.task:once:action=crash")
            engine = make_engine(faults=injector)
            try:
                query = (
                    engine.from_strings(ROWS)
                    .predicate("bm25")
                    .shards(2, executor=executor)
                )
                assert run_workload(query) == baseline("bm25")
            finally:
                engine.clear_cache()
            assert engine.obs.metrics.value("resilience.task_retries") == 1

    def test_broken_pool_fault_triggers_rebuild(self):
        injector = parse_fault_spec("executor.pool:once")
        engine = make_engine(faults=injector)
        try:
            query = (
                engine.from_strings(ROWS)
                .predicate("bm25")
                .shards(2, executor="thread")
            )
            assert run_workload(query) == baseline("bm25")
        finally:
            engine.clear_cache()
        assert engine.obs.metrics.value("resilience.pool_rebuilds") == 1

    def test_exhausted_retries_fall_back_to_serial(self):
        """With a one-attempt policy the failed task cannot retry in the
        pool; the last-resort in-process serial run still heals exactly."""
        injector = parse_fault_spec("shard.task:once")
        engine = make_engine(
            faults=injector, retry_policy=RetryPolicy(max_attempts=1)
        )
        try:
            query = (
                engine.from_strings(ROWS)
                .predicate("bm25")
                .shards(2, executor="thread")
            )
            assert run_workload(query) == baseline("bm25")
        finally:
            engine.clear_cache()
        assert engine.obs.metrics.value("resilience.serial_fallbacks") == 1

    def test_env_spec_drives_a_plain_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "shard.task:nth=1")
        engine = make_engine()
        try:
            assert engine.faults.active
            query = (
                engine.from_strings(ROWS)
                .predicate("jaccard")
                .shards(2, executor="thread")
            )
            assert run_workload(query) == baseline("jaccard")
        finally:
            engine.clear_cache()
        assert engine.faults.fired("shard.task") == 1

    def test_sql_statement_fault_surfaces_then_clears(self):
        injector = parse_fault_spec("sql.statement:once")
        engine = make_engine(faults=injector)
        try:
            query = (
                engine.from_strings(ROWS)
                .predicate("bm25")
                .realization("declarative")
            )
            with pytest.raises(InjectedFault):
                query.top_k(QUERIES[0], 5)
            clean = make_engine()
            try:
                want = (
                    clean.from_strings(ROWS)
                    .predicate("bm25")
                    .realization("declarative")
                    .top_k(QUERIES[0], 5)
                )
            finally:
                clean.clear_cache()
            # The rule is spent: the same engine answers correctly now.
            assert query.top_k(QUERIES[0], 5) == want
        finally:
            engine.clear_cache()

    def test_expired_deadline_stops_sharded_execution(self):
        engine = make_engine()
        try:
            query = (
                engine.from_strings(ROWS)
                .predicate("bm25")
                .shards(2, executor="serial")
            )
            with deadline_scope(Deadline(0.0)):
                with pytest.raises(DeadlineExceeded):
                    query.top_k(QUERIES[0], 5)
            # Outside the scope the same engine serves normally.
            assert query.top_k(QUERIES[0], 5) == (
                baseline("bm25")[0]
            )
        finally:
            engine.clear_cache()

    def test_explain_reports_resilience_and_ladder_notes(self):
        injector = parse_fault_spec("shard.task:once")
        engine = make_engine(faults=injector)
        try:
            query = (
                engine.from_strings(ROWS)
                .predicate("bm25")
                .shards(2, executor="thread")
            )
            report = query.explain(QUERIES[0], k=5)
        finally:
            engine.clear_cache()
        assert report.resilience is not None
        assert report.resilience.task_retries == 1
        text = report.describe()
        assert "resilience:" in text
        notes = " ".join(report.plan.notes)
        assert "executor fallback ladder" in notes
        assert "kernel fallback ladder" in notes or not kernels.numpy_available()


# ---------------------------------------------------------------------------
# kernel fallback ladder
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not kernels.numpy_available(), reason="numpy unavailable")
class TestKernelFallback:
    def test_numpy_accumulate_failure_heals_bit_identically(self, monkeypatch):
        predicate = make_predicate("bm25").fit(ROWS)
        with kernels.use_backend("python"):
            want = dict(predicate._scores(QUERIES[0]))

        def boom(*args, **kwargs):
            raise RuntimeError("corrupted arrays")

        monkeypatch.setattr(kernels, "_accumulate_numpy", boom)
        before = kernels.ops_snapshot()["python_fallback"]
        with kernels.use_backend("numpy"):
            got = dict(predicate._scores(QUERIES[0]))
        assert got == want
        assert kernels.ops_snapshot()["python_fallback"] > before

    def test_engine_publishes_kernel_fallback_counter(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("corrupted arrays")

        monkeypatch.setattr(kernels, "_accumulate_numpy", boom)
        engine = make_engine()
        try:
            with kernels.use_backend("numpy"):
                got = engine.from_strings(ROWS).predicate("bm25").rank(QUERIES[0])
        finally:
            engine.clear_cache()
        assert got  # healed: real results despite the broken kernel
        assert engine.obs.metrics.value("kernel_ops.python_fallback") > 0
