"""Unit and integration tests for the approximate join and deduplication."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dedup import ClusteringQuality, Deduplicator, UnionFind
from repro.core.join import ApproximateJoiner, JoinMatch, SelfJoinStats
from repro.core.predicates import Jaccard
from repro.core.predicates.base import Predicate, ScoredTuple


class _UnsortedPredicate(Predicate):
    """Pathological predicate whose select() ignores rank order entirely."""

    name = "unsorted"

    def tokenize_phase(self) -> None:
        pass

    def weight_phase(self) -> None:
        pass

    def _scores(self, query):
        return {0: 0.1, 1: 0.9, 2: 0.5}

    def select(self, query, threshold):
        # Deliberately worst-score-first to exercise the join's top_k sort.
        return [ScoredTuple(0, 0.1), ScoredTuple(2, 0.5), ScoredTuple(1, 0.9)]


class TestUnionFind:
    def test_initial_singletons(self):
        uf = UnionFind(4)
        assert len(uf.groups()) == 4

    def test_union_and_find(self):
        uf = UnionFind(5)
        assert uf.union(0, 1) is True
        assert uf.union(1, 2) is True
        assert uf.union(0, 2) is False  # already connected
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)

    def test_groups_partition_everything(self):
        uf = UnionFind(6)
        uf.union(0, 5)
        uf.union(2, 3)
        groups = uf.groups()
        members = sorted(tid for group in groups.values() for tid in group)
        assert members == list(range(6))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40))
    @settings(max_examples=40)
    def test_transitivity_property(self, edges):
        uf = UnionFind(20)
        for left, right in edges:
            uf.union(left, right)
        # connectivity is an equivalence relation: same-root pairs share groups
        groups = uf.groups()
        for root, members in groups.items():
            for member in members:
                assert uf.find(member) == root


class TestApproximateJoiner:
    def test_basic_join(self, company_strings):
        joiner = ApproximateJoiner(company_strings, predicate="jaccard", threshold=0.4)
        matches = joiner.join(["AT&T Incorporated"])
        assert any(match.right_text == "AT&T Incorporated" for match in matches)
        for match in matches:
            assert isinstance(match, JoinMatch)
            assert match.score >= 0.4
            assert match.left_id == 0

    def test_join_with_predicate_instance(self, company_strings):
        joiner = ApproximateJoiner(company_strings, predicate=Jaccard(), threshold=0.3)
        assert joiner.predicate.name == "Jaccard"

    def test_kwargs_only_with_name(self, company_strings):
        with pytest.raises(ValueError):
            ApproximateJoiner(company_strings, predicate=Jaccard(), q=3)

    def test_top_k_limits_matches_per_probe(self, company_strings):
        joiner = ApproximateJoiner(company_strings, predicate="jaccard", threshold=0.1)
        matches = joiner.join(["Beijing Hotel"], top_k=1)
        assert len(matches) == 1
        assert matches[0].right_text in ("Beijing Hotel", "Hotel Beijing")

    def test_top_k_keeps_highest_scores_even_if_predicate_unsorted(self):
        """Regression: top_k must keep the k best matches, not the k first."""
        joiner = ApproximateJoiner(
            ["a", "b", "c"], predicate=_UnsortedPredicate(), threshold=0.0
        )
        matches = joiner.join(["query"], top_k=2)
        assert [match.right_id for match in matches] == [1, 2]
        assert [match.score for match in matches] == [0.9, 0.5]

    def test_top_k_rejects_negative(self, company_strings):
        joiner = ApproximateJoiner(company_strings, predicate="jaccard", threshold=0.1)
        with pytest.raises(ValueError):
            joiner.join(["Beijing Hotel"], top_k=-1)

    def test_self_join_records_stats(self, company_strings):
        joiner = ApproximateJoiner(company_strings, predicate="jaccard", threshold=0.5)
        matches = joiner.self_join()
        stats = joiner.last_self_join_stats
        assert isinstance(stats, SelfJoinStats)
        assert stats.probes == len(company_strings)
        assert stats.pairs_emitted == len(matches)
        assert stats.pairs_examined >= stats.pairs_emitted

    def test_iter_join_streams(self, company_strings):
        joiner = ApproximateJoiner(company_strings, predicate="jaccard", threshold=0.9)
        streamed = list(joiner.iter_join(["Beijing Hotel", "nothing similar"]))
        assert all(match.left_id == 0 for match in streamed)

    def test_self_join_reports_each_pair_once(self, company_strings):
        joiner = ApproximateJoiner(company_strings, predicate="jaccard", threshold=0.5)
        pairs = {(match.left_id, match.right_id) for match in joiner.self_join()}
        assert all(left < right for left, right in pairs)
        # Beijing Hotel / Hotel Beijing are near-identical under q-grams.
        assert (5, 7) in pairs

    def test_self_join_identity_flag(self, company_strings):
        joiner = ApproximateJoiner(company_strings, predicate="jaccard", threshold=0.99)
        with_identity = joiner.self_join(include_identity=True)
        assert any(match.left_id == match.right_id for match in with_identity)

    def test_threshold_validation(self, company_strings):
        with pytest.raises(ValueError):
            ApproximateJoiner(company_strings, predicate="jaccard", threshold=-0.5)

    def test_probe_relation_different_from_base(self, company_strings):
        queries = ["Morgn Stanley Group", "Beijing Htoel"]
        joiner = ApproximateJoiner(company_strings, predicate="bm25", threshold=0.0)
        matches = joiner.join(queries, top_k=1)
        assert len(matches) == 2
        assert matches[0].right_id == 0
        assert matches[1].right_id in (5, 7)


class TestDeduplicator:
    def test_clusters_partition_the_relation(self, company_strings):
        dedup = Deduplicator(company_strings, predicate="jaccard", threshold=0.6)
        clusters = dedup.clusters()
        members = sorted(tid for cluster in clusters for tid in cluster.members)
        assert members == list(range(len(company_strings)))

    def test_known_duplicates_clustered_together(self, company_strings):
        dedup = Deduplicator(company_strings, predicate="jaccard", threshold=0.6)
        labels = dedup.assignments()
        assert labels[5] == labels[7]          # Beijing Hotel / Hotel Beijing
        assert labels[5] != labels[1]          # unrelated company

    def test_representative_is_longest_member(self, company_strings):
        dedup = Deduplicator(company_strings, predicate="jaccard", threshold=0.6)
        for cluster in dedup.clusters():
            assert cluster.representative == max(
                (company_strings[tid] for tid in cluster.members), key=len
            )

    def test_high_threshold_yields_singletons(self, company_strings):
        dedup = Deduplicator(company_strings, predicate="jaccard", threshold=0.999)
        clusters = dedup.clusters()
        # Only the q-gram-identical pair may merge; everything else is a singleton.
        assert len(clusters) >= len(company_strings) - 1

    def test_quality_against_ground_truth(self, small_dataset):
        strings = small_dataset.strings[:150]
        truth = small_dataset.cluster_ids[:150]
        dedup = Deduplicator(strings, predicate="jaccard", threshold=0.55)
        quality = dedup.quality(truth)
        assert isinstance(quality, ClusteringQuality)
        assert 0.0 <= quality.precision <= 1.0
        assert 0.0 <= quality.recall <= 1.0
        assert quality.f1 > 0.3  # far better than random clustering
        assert quality.num_true_pairs > 0

    def test_quality_length_mismatch(self, company_strings):
        dedup = Deduplicator(company_strings, predicate="jaccard")
        with pytest.raises(ValueError):
            dedup.quality([0, 1])

    def test_threshold_tradeoff(self, small_dataset):
        """Lower thresholds raise recall; higher thresholds raise precision."""
        strings = small_dataset.strings[:120]
        truth = small_dataset.cluster_ids[:120]
        dedup = Deduplicator(strings, predicate="jaccard")
        loose = dedup.quality(truth, threshold=0.35)
        strict = dedup.quality(truth, threshold=0.8)
        assert loose.recall >= strict.recall - 1e-9
        assert strict.precision >= loose.precision - 0.05
