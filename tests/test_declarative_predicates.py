"""Integration tests: declarative realizations vs. direct implementations.

The paper's central claim is that every predicate is expressible in plain
SQL; these tests check that the SQL realization reproduces the direct
in-memory implementation -- identical scores where the formulas are identical
and identical rankings where only query-constant factors differ.
"""

from __future__ import annotations

import pytest

from repro.backends import MemoryBackend, SQLiteBackend
from repro.core.predicates import make_predicate
from repro.declarative import (
    available_declarative_predicates,
    make_declarative_predicate,
)

QUERIES = [
    "Morgan Stanley Group Inc.",
    "Morgn Stanley Grop Inc.",
    "AT&T Incorporated",
    "Hotel Beijing",
    "Granite Construction",
]

#: Predicates whose declarative and direct scores must match numerically.
SCORE_EXACT = [
    "intersect",
    "jaccard",
    "weighted_match",
    "weighted_jaccard",
    "cosine",
    "bm25",
    "hmm",
    "lm",
    "edit_distance",
    "ges",
]

#: Predicates where only the ranking (not the raw score) is compared, because
#: the SQL form keeps/drops different query-constant factors.
RANK_ONLY = ["soft_tfidf", "ges_jaccard", "ges_apx"]


def _direct(name: str):
    kwargs = {"threshold": 0.3} if name in ("ges_jaccard", "ges_apx") else {}
    return make_predicate(name, **kwargs)


def _declarative(name: str, backend):
    kwargs = {"threshold": 0.3} if name in ("ges_jaccard", "ges_apx") else {}
    return make_declarative_predicate(name, backend=backend, **kwargs)


class TestRegistryCoverage:
    def test_all_thirteen_declarative_predicates(self):
        """All 13 paper predicates, including UDF-backed plain GES."""
        assert len(available_declarative_predicates()) == 13

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_declarative_predicate("soundex")

    def test_rank_requires_preprocess(self):
        predicate = make_declarative_predicate("jaccard")
        with pytest.raises(RuntimeError):
            predicate.rank("query")


@pytest.mark.parametrize("name", SCORE_EXACT)
class TestScoreParity:
    def test_scores_match_direct_implementation(self, name, company_strings):
        direct = _direct(name).fit(company_strings)
        declarative = _declarative(name, MemoryBackend()).preprocess(company_strings)
        for query in QUERIES:
            # Tuples whose only shared tokens carry weight exactly 0 (RS weight
            # at df = N/2) score 0 in SQL and are skipped by the direct
            # implementation; ignore those borderline candidates on both sides.
            direct_scores = {
                s.tid: s.score for s in direct.rank(query) if abs(s.score) > 1e-12
            }
            declarative_scores = {
                s.tid: s.score for s in declarative.rank(query) if abs(s.score) > 1e-12
            }
            assert set(declarative_scores) == set(direct_scores), (name, query)
            for tid, score in direct_scores.items():
                assert declarative_scores[tid] == pytest.approx(score, rel=1e-6, abs=1e-9), (
                    name,
                    query,
                    tid,
                )


@pytest.mark.parametrize("name", RANK_ONLY)
class TestRankParity:
    def test_top_result_matches_direct_implementation(self, name, company_strings):
        direct = _direct(name).fit(company_strings)
        declarative = _declarative(name, MemoryBackend()).preprocess(company_strings)
        for query in QUERIES:
            direct_top = direct.rank(query, limit=1)
            declarative_top = declarative.rank(query, limit=1)
            if not direct_top:
                assert not declarative_top
                continue
            assert declarative_top, (name, query)
            assert declarative_top[0].tid == direct_top[0].tid, (name, query)


class TestScoreCaching:
    def test_score_matches_rank_and_runs_sql_once_per_query(self, company_strings):
        predicate = make_declarative_predicate("jaccard").preprocess(company_strings)
        expected = {s.tid: s.score for s in predicate.rank("Beijing Hotel")}

        calls = {"count": 0}
        original = predicate.query_scores

        def counting(query):
            calls["count"] += 1
            return original(query)

        predicate.query_scores = counting
        for tid in range(len(company_strings)):
            assert predicate.score("Beijing Hotel", tid) == pytest.approx(
                expected.get(tid, 0.0)
            )
        assert calls["count"] == 1  # one SQL execution for the whole loop

    def test_score_respects_restriction_like_rank(self, company_strings):
        # score() must see the same candidates as rank() -- the cache cannot
        # survive a restriction (or blocker) change.
        predicate = make_declarative_predicate("jaccard").preprocess(company_strings)
        full = predicate.score("Beijing Hotel", 5)
        assert full > 0.0
        with predicate.restrict_candidates({0}):
            assert predicate.score("Beijing Hotel", 5) == 0.0
        assert predicate.score("Beijing Hotel", 5) == pytest.approx(full)

    def test_score_cache_invalidated_per_query_and_on_preprocess(self, company_strings):
        predicate = make_declarative_predicate("jaccard").preprocess(company_strings)
        beijing = predicate.score("Beijing Hotel", 5)
        assert predicate.score("AT&T Incorporated", 5) != beijing
        assert predicate.score("Beijing Hotel", 5) == pytest.approx(beijing)
        predicate.preprocess(["Beijing Hotel"])
        assert predicate.score("Beijing Hotel", 5) == 0.0
        assert predicate.score("Beijing Hotel", 0) == pytest.approx(1.0)


class TestSelectAndThresholds:
    def test_declarative_select_applies_threshold(self, company_strings):
        predicate = make_declarative_predicate("jaccard").preprocess(company_strings)
        results = predicate.select("Beijing Hotel", threshold=0.9)
        assert {scored.tid for scored in results} == {5, 7}

    def test_edit_distance_filtered_select(self, company_strings):
        predicate = make_declarative_predicate("edit_distance").preprocess(company_strings)
        unfiltered = {
            scored.tid: scored.score
            for scored in predicate.rank("Morgan Stanley Group Inc")
            if scored.score >= 0.8
        }
        filtered = {
            scored.tid: scored.score
            for scored in predicate.select("Morgan Stanley Group Inc", threshold=0.8)
        }
        assert filtered.keys() == unfiltered.keys()
        for tid, score in filtered.items():
            assert score == pytest.approx(unfiltered[tid])

    def test_ges_threshold_prunes(self, company_strings):
        loose = make_declarative_predicate("ges_jaccard", threshold=0.3).preprocess(company_strings)
        strict = make_declarative_predicate("ges_jaccard", threshold=0.95).preprocess(company_strings)
        query = "Morgan Stanley Grup Inc."
        assert len(strict.rank(query)) <= len(loose.rank(query))


class TestSqliteBackendEndToEnd:
    """A representative subset re-run on SQLite to keep runtime reasonable."""

    @pytest.mark.parametrize("name", ["jaccard", "bm25", "hmm", "lm", "cosine"])
    def test_sqlite_matches_memory(self, name, company_strings):
        sqlite_backend = SQLiteBackend()
        memory = _declarative(name, MemoryBackend()).preprocess(company_strings)
        sqlite = _declarative(name, sqlite_backend).preprocess(company_strings)
        try:
            for query in QUERIES[:3]:
                memory_scores = {s.tid: s.score for s in memory.rank(query)}
                sqlite_scores = {s.tid: s.score for s in sqlite.rank(query)}
                assert set(memory_scores) == set(sqlite_scores)
                for tid, score in memory_scores.items():
                    assert sqlite_scores[tid] == pytest.approx(score, rel=1e-6, abs=1e-9)
        finally:
            sqlite_backend.close()


class TestSqlTokenization:
    def test_sql_qgram_generation_matches_python(self, company_strings):
        """Appendix A.1 SQL tokenization equals the Python tokenizer."""
        declarative = make_declarative_predicate(
            "intersect", backend=MemoryBackend(), sql_tokenization=True
        )
        declarative.preprocess(company_strings[:6])
        sql_tokens = sorted(declarative.backend.query("SELECT tid, token FROM BASE_TOKENS"))

        python = make_declarative_predicate("intersect", backend=MemoryBackend())
        python.preprocess(company_strings[:6])
        python_tokens = sorted(python.backend.query("SELECT tid, token FROM BASE_TOKENS"))
        assert sql_tokens == python_tokens

    def test_sql_tokenization_requires_qgram_tokenizer(self, company_strings):
        from repro.text.tokenize import WordTokenizer

        declarative = make_declarative_predicate(
            "intersect", backend=MemoryBackend(), sql_tokenization=True
        )
        declarative.tokenizer = WordTokenizer()
        with pytest.raises(ValueError):
            declarative.preprocess(company_strings[:3])
