"""Unit tests for the unified similarity engine (repro.engine)."""

from __future__ import annotations

import pytest

from repro import (
    ApproximateSelector,
    Match,
    SelectionResult,
    SimilarityEngine,
)
from repro.core import ApproximateJoiner, Deduplicator
from repro.core.predicates import Jaccard, ScoredTuple
from repro.declarative import DeclarativeJaccard
from repro.engine import SimilarityPredicateProtocol
from repro.engine import registry as engine_registry


@pytest.fixture()
def engine():
    return SimilarityEngine()


class TestMatchUnification:
    def test_aliases_are_the_same_class(self):
        assert SelectionResult is Match
        assert ScoredTuple is Match

    def test_scored_tuple_contract(self):
        match = Match(3, 0.5)
        tid, score = match
        assert (tid, score) == (3, 0.5)
        assert match.string is None

    def test_selection_result_contract(self):
        match = Match(3, 0.5, "AT&T Inc.")
        assert match.text == match.string == "AT&T Inc."
        assert match.with_string("IBM").string == "IBM"

    def test_old_positional_order_raises(self):
        # The retired SelectionResult(tid, text, score) order must fail
        # loudly instead of silently swapping text and score.
        with pytest.raises(TypeError):
            Match(0, "AT&T Inc.", 0.9)


class TestFluentQuery:
    def test_fluent_chain_returns_matches_with_strings(self, engine, company_strings):
        results = (
            engine.from_strings(company_strings)
            .predicate("bm25")
            .realization("declarative")
            .backend("sqlite")
            .top_k("Morgn Stanley Inc", 2)
        )
        assert results[0].tid == 0
        assert results[0].string == company_strings[0]
        assert isinstance(results[0], Match)

    def test_builders_do_not_mutate(self, engine, company_strings):
        base = engine.from_strings(company_strings).predicate("jaccard")
        declarative = base.realization("declarative")
        assert base._resolved_realization() == "direct"
        assert declarative._resolved_realization() == "declarative"

    def test_select_and_rank_match_the_selector(self, engine, company_strings):
        query = engine.from_strings(company_strings).predicate("jaccard")
        selector = ApproximateSelector(company_strings, predicate="jaccard")
        assert query.select("Beijing Hotel", 0.5) == selector.select("Beijing Hotel", 0.5)
        assert query.rank("Beijing Hotel") == selector.rank("Beijing Hotel")

    def test_predicate_instance_pins_realization(self, engine, company_strings):
        query = engine.from_strings(company_strings).predicate(DeclarativeJaccard())
        assert query._resolved_realization() == "declarative"
        with pytest.raises(ValueError):
            query.realization("direct").rank("Beijing")

    def test_instance_with_kwargs_rejected(self, engine, company_strings):
        with pytest.raises(ValueError):
            engine.from_strings(company_strings).predicate(Jaccard(), q=3)

    def test_unknown_realization_and_backend(self, engine, company_strings):
        query = engine.from_strings(company_strings)
        with pytest.raises(ValueError):
            query.realization("quantum")
        with pytest.raises(ValueError):
            query.backend("postgres")

    def test_negative_top_k(self, engine, company_strings):
        with pytest.raises(ValueError):
            engine.from_strings(company_strings).top_k("x", -1)

    def test_score(self, engine, company_strings):
        query = engine.from_strings(company_strings).predicate("jaccard")
        assert query.score(company_strings[2], 2) == pytest.approx(1.0)

    def test_session_default_backend_is_used(self, company_strings):
        from repro.backends.sqlite import SQLiteBackend

        engine = SimilarityEngine(realization="declarative", backend="sqlite")
        query = engine.from_strings(company_strings).predicate("jaccard")
        predicate = query.fitted_predicate()
        # The session default must drive execution, not just plan()/explain().
        assert isinstance(predicate.backend.inner, SQLiteBackend)
        assert query.plan().backend == "sqlite"
        assert query.rank("Beijing Hotel")[0].string is not None

    def test_both_predicates_satisfy_the_protocol(self, engine, company_strings):
        direct = engine.from_strings(company_strings).predicate("jaccard")
        declarative = direct.realization("declarative")
        assert isinstance(direct.fitted_predicate(), SimilarityPredicateProtocol)
        assert isinstance(declarative.fitted_predicate(), SimilarityPredicateProtocol)


class TestStateCaching:
    def test_run_many_fits_once(self, engine, company_strings, monkeypatch):
        fits = {"count": 0}
        original = Jaccard.tokenize_phase

        def counting(self):
            fits["count"] += 1
            return original(self)

        monkeypatch.setattr(Jaccard, "tokenize_phase", counting)
        query = engine.from_strings(company_strings).predicate("jaccard")
        batches = query.run_many(["Beijing Hotel", "AT&T Inc.", "IBM"], op="top_k", k=2)
        assert len(batches) == 3
        assert all(isinstance(match, Match) for batch in batches for match in batch)
        query.run_many(["Morgan Stanley"], op="rank")
        query.rank("Goldman Sachs")
        assert fits["count"] == 1

    def test_clones_share_fitted_state(self, engine, company_strings, monkeypatch):
        fits = {"count": 0}
        original = Jaccard.tokenize_phase

        def counting(self):
            fits["count"] += 1
            return original(self)

        monkeypatch.setattr(Jaccard, "tokenize_phase", counting)
        base = engine.from_strings(company_strings)
        base.predicate("jaccard").rank("Beijing")
        base.predicate("jaccard").rank("Hotel")
        assert fits["count"] == 1
        assert engine.cache_size == 1

    def test_different_plans_do_not_share_state(self, engine, company_strings):
        base = engine.from_strings(company_strings)
        base.predicate("jaccard").rank("Beijing")
        base.predicate("jaccard").realization("declarative").rank("Beijing")
        assert engine.cache_size == 2
        engine.clear_cache()
        assert engine.cache_size == 0

    def test_from_strings_interns_identical_corpora(self, engine, company_strings, monkeypatch):
        fits = {"count": 0}
        original = Jaccard.tokenize_phase

        def counting(self):
            fits["count"] += 1
            return original(self)

        monkeypatch.setattr(Jaccard, "tokenize_phase", counting)
        engine.from_strings(company_strings).predicate("jaccard").rank("Beijing")
        engine.from_strings(list(company_strings)).predicate("jaccard").rank("Hotel")
        assert fits["count"] == 1
        assert engine.cache_size == 1

    def test_threshold_sweep_shares_predicate_state(self, engine, company_strings):
        query = engine.from_strings(company_strings).predicate("jaccard").blocker(
            "length+prefix"
        )
        query.select("Beijing Hotel", 0.6)
        query.select("Beijing Hotel", 0.7)
        # Only the (cheap) blocker differs per threshold; the expensive
        # fitted predicate state is shared.
        assert engine.cache_size == 1
        assert len(engine._blockers) == 2

    def test_blocker_does_not_leak_into_blockerless_query(self, engine, company_strings):
        from repro.core.predicates.registry import make_predicate

        predicate = make_predicate("jaccard")
        query = engine.from_strings(company_strings).predicate(predicate)
        blocked = query.blocker("lsh", lsh_bands=1, lsh_rows=8)
        pruned = blocked.select("Beijing Hotel", 0.1)
        full = query.select("Beijing Hotel", 0.1)
        assert predicate.blocker is None
        assert len(full) >= len(pruned)
        assert {m.tid for m in full} >= {5, 7, 6}

    def test_user_attached_blocker_is_preserved(self, engine, company_strings):
        from repro.blocking import MinHashLSH
        from repro.core.predicates.registry import make_predicate

        blocker = MinHashLSH(num_bands=4, rows_per_band=4)
        predicate = make_predicate("jaccard").set_blocker(blocker)
        query = engine.from_strings(company_strings).predicate(predicate)
        query.rank("Beijing Hotel")
        assert predicate.blocker is blocker

    def test_shared_instance_is_refit_across_corpora(self, engine, company_strings):
        # One predicate instance queried through two corpora: the earlier
        # corpus's cached state wraps the same object, so a cache hit must
        # detect that the instance was meanwhile refitted on the other
        # relation and refit it -- not silently answer over the wrong corpus.
        from repro.core.predicates.registry import make_predicate

        predicate = make_predicate("jaccard")
        first = engine.from_strings(company_strings).predicate(predicate)
        second = engine.from_strings(["Zebra Quux Ltd", "Flurble GmbH"]).predicate(
            predicate
        )
        expected = first.rank("Beijing Hotel")
        assert {match.tid for match in expected} >= {5}
        assert second.rank("Zebra Quux Ltd")[0].tid == 0
        assert first.rank("Beijing Hotel") == expected

    def test_shared_declarative_instance_is_refit_across_corpora(
        self, engine, company_strings
    ):
        predicate = DeclarativeJaccard()
        first = engine.from_strings(company_strings).predicate(predicate)
        second = engine.from_strings(["Zebra Quux Ltd", "Flurble GmbH"]).predicate(
            predicate
        )
        expected = first.rank("Beijing Hotel")
        assert {match.tid for match in expected} >= {5}
        assert second.rank("Zebra Quux Ltd")[0].tid == 0
        assert first.rank("Beijing Hotel") == expected

    def test_shared_backend_instance_is_refit_across_corpora(self, engine, company_strings):
        # Declarative predicates materialize fixed-name tables, so two cached
        # states sharing one backend instance clobber each other; the engine
        # must detect the clobber and rematerialize before answering.
        from repro.backends.sqlite import SQLiteBackend

        backend = SQLiteBackend()
        first = (
            engine.from_strings(company_strings)
            .predicate("jaccard")
            .realization("declarative")
            .backend(backend)
        )
        second = (
            engine.from_strings(["Zebra Quux Ltd", "Flurble GmbH"])
            .predicate("jaccard")
            .realization("declarative")
            .backend(backend)
        )
        expected = first.rank("Beijing Hotel")
        assert {match.tid for match in expected} >= {5}
        assert second.rank("Zebra Quux Ltd")[0].tid == 0
        assert first.rank("Beijing Hotel") == expected

    def test_recorder_only_captures_while_tracing(self, engine, company_strings):
        # Normal query workloads must not accumulate SQL statement text
        # without bound on a long-lived engine: capture happens only while a
        # live tracer is active (explain()/trace()), as sql.statement spans.
        query = (
            engine.from_strings(company_strings)
            .predicate("jaccard")
            .realization("declarative")
        )
        query.run_many(["Beijing Hotel", "AT&T Inc."], op="rank")
        predicate = query.fitted_predicate()
        assert not engine.tracer.enabled  # default engine: no-op tracer
        report = query.explain("Beijing Hotel", k=3)
        assert any("QUERY_TOKENS" in statement for statement in report.sql)
        # The report's SQL is read off the captured span tree.
        assert report.trace is not None
        spans = [s for s in report.trace.walk() if s.name == "sql.statement"]
        assert tuple(s.attributes["sql"] for s in spans) == report.sql
        # Queries outside explain()/trace() leave no trace behind.
        query.rank("Morgan Stanley")
        assert engine.obs.tracer.last_root is None

    def test_clear_cache_detaches_engine_attached_blockers(self, engine, company_strings):
        # Once clear_cache() forgets the engine-attached blocker ids, a
        # blocker left on a caller instance would pass for caller-attached
        # and silently prune blocker-less queries.
        from repro.core.predicates.registry import make_predicate

        predicate = make_predicate("jaccard")
        query = engine.from_strings(company_strings).predicate(predicate)
        pruned = query.blocker("lsh", lsh_bands=1, lsh_rows=8).select(
            "Beijing Hotel", 0.1
        )
        engine.clear_cache()
        assert predicate.blocker is None
        full = query.select("Beijing Hotel", 0.1)
        assert len(full) >= len(pruned)
        assert {match.tid for match in full} >= {5, 6, 7}

    def test_clear_cache_releases_interned_corpora(self, engine, company_strings):
        query = engine.from_strings(company_strings).predicate("jaccard")
        query.rank("Beijing Hotel")
        assert len(engine._corpora) == 1
        engine.clear_cache()
        assert engine._corpora == {}
        assert engine.cache_size == 0
        # Live queries keep working; their state is rebuilt on demand.
        assert {match.tid for match in query.rank("Beijing Hotel")} >= {5}

    def test_run_many_select_and_validation(self, engine, company_strings):
        query = engine.from_strings(company_strings).predicate("jaccard")
        selected = query.run_many(["Beijing Hotel"], op="select", threshold=0.5)
        assert {match.tid for match in selected[0]} >= {5}
        with pytest.raises(ValueError):
            query.run_many(["x"], op="select")
        with pytest.raises(ValueError):
            query.run_many(["x"], op="top_k")
        with pytest.raises(ValueError):
            query.run_many(["x"], op="cluster")


class TestBlocking:
    def test_exact_blocker_preserves_select(self, engine, company_strings):
        base = engine.from_strings(company_strings).predicate("jaccard")
        blocked = base.blocker("length+prefix")
        assert blocked.select("Beijing Hotel", 0.9) == base.select("Beijing Hotel", 0.9)

    def test_exact_blocker_requires_threshold(self, engine, company_strings):
        blocked = (
            engine.from_strings(company_strings).predicate("jaccard").blocker("length")
        )
        with pytest.raises(ValueError):
            blocked.top_k("Beijing Hotel", 3)

    def test_self_join_matches_joiner(self, engine, company_strings):
        query = engine.from_strings(company_strings).predicate("jaccard")
        joiner = ApproximateJoiner(company_strings, predicate="jaccard", threshold=0.6)
        assert query.self_join(0.6) == joiner.self_join()
        assert query.last_self_join_stats is not None

    def test_dedup_matches_deduplicator(self, engine, company_strings):
        clusters = engine.from_strings(company_strings).predicate("jaccard").dedup(0.6)
        expected = Deduplicator(
            company_strings, predicate="jaccard", threshold=0.6
        ).clusters()
        assert clusters == expected

    def test_declarative_blocked_select_is_exact(self, engine, company_strings):
        base = (
            engine.from_strings(company_strings)
            .predicate("jaccard")
            .realization("declarative")
        )
        blocked = base.blocker("length+prefix")
        assert blocked.select("Beijing Hotel", 0.9) == base.select("Beijing Hotel", 0.9)

    def test_declarative_dedup_through_engine(self, engine, company_strings):
        clusters = (
            engine.from_strings(company_strings)
            .predicate("jaccard")
            .realization("declarative")
            .dedup(0.6)
        )
        expected = Deduplicator(
            company_strings, predicate="jaccard", threshold=0.6
        ).clusters()
        assert clusters == expected


class TestExplain:
    def test_plan_without_execution(self, engine, company_strings):
        report = (
            engine.from_strings(company_strings)
            .predicate("bm25")
            .realization("declarative")
            .backend("sqlite")
            .explain()
        )
        assert report.plan.predicate == "bm25"
        assert report.plan.realization == "declarative"
        assert report.plan.backend == "sqlite"
        assert report.sql == ()
        assert report.seconds is None

    def test_declarative_explain_reports_sql(self, engine, company_strings):
        report = (
            engine.from_strings(company_strings)
            .predicate("jaccard")
            .realization("declarative")
            .explain("Beijing Hotel", k=3)
        )
        assert report.plan.operation == "top_k"
        assert report.num_results == 3
        assert report.results is not None and len(report.results) == 3
        assert report.results[0].string is not None
        assert report.num_candidates is not None
        assert any("QUERY_TOKENS" in statement for statement in report.sql)
        text = report.describe()
        assert "emitted SQL" in text and "jaccard" in text

    def test_direct_explain_reports_blocker_stats(self, engine, company_strings):
        report = (
            engine.from_strings(company_strings)
            .predicate("jaccard")
            .blocker("length+prefix")
            .explain("Beijing Hotel", threshold=0.9)
        )
        assert report.plan.operation == "select"
        assert report.plan.blocker == "length+prefix"
        assert report.plan.blocker_threshold == 0.9
        assert report.sql == ()
        assert report.blocker_stats is not None
        assert report.blocker_stats.candidates_out <= report.blocker_stats.candidates_in
        assert "blocking:" in report.describe()

    def test_plan_notes_backend_ignored_for_direct(self, engine, company_strings):
        plan = engine.from_strings(company_strings).backend("sqlite").plan()
        assert any("ignored" in note for note in plan.notes)


class TestMergedRegistry:
    def test_canonical_name_resolution(self):
        assert engine_registry.canonical_name("TF-IDF") == "cosine"
        assert engine_registry.canonical_name(" Okapi ") == "bm25"
        with pytest.raises(ValueError):
            engine_registry.canonical_name("soundex")

    def test_make_both_realizations(self):
        direct = engine_registry.make("jaccard")
        declarative = engine_registry.make("jaccard", realization="declarative")
        assert isinstance(direct, Jaccard)
        assert isinstance(declarative, DeclarativeJaccard)

    def test_backend_rejected_for_direct(self):
        with pytest.raises(ValueError):
            engine_registry.make("jaccard", backend="sqlite")

    def test_aliases_and_realizations_introspection(self):
        assert "okapi" in engine_registry.aliases_for("bm25")
        assert engine_registry.available_realizations("ges") == (
            "direct",
            "declarative",
        )


class TestDeprecatedSelectorShim:
    def test_selector_delegates_to_engine(self, company_strings):
        selector = ApproximateSelector(company_strings, predicate="bm25")
        assert selector.predicate.is_fitted  # fit-at-construction preserved
        results = selector.top_k("Morgn Stanley Inc", k=1)
        assert results[0].tid == 0
        assert results[0].text == company_strings[0]
