"""Unit tests for the combination predicates (GES family and SoftTFIDF)."""

from __future__ import annotations

import pytest

from repro.core.predicates import GES, GESApx, GESJaccard, SoftTFIDF


class TestGES:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GES(cins=1.5)

    def test_identity_scores_one(self, company_strings):
        predicate = GES().fit(company_strings)
        for tid in (0, 5, 9):
            assert predicate.score(company_strings[tid], tid) == pytest.approx(1.0)

    def test_scores_in_unit_interval(self, company_strings):
        predicate = GES().fit(company_strings)
        for scored in predicate.rank("Morgan Stanley Grp Inc"):
            assert 0.0 <= scored.score <= 1.0

    def test_edit_error_resilience(self, company_strings):
        """GES tolerates within-word edit errors well (paper Table 5.6)."""
        predicate = GES().fit(company_strings)
        assert predicate.score("Morgn Stanlye Group Inc.", 0) > 0.8

    def test_token_swap_weakness(self, company_strings):
        """GES cannot capture token swaps (paper section 5.4.1)."""
        predicate = GES().fit(company_strings)
        swapped = predicate.score("Hotel Beijing", 5)     # base tuple "Beijing Hotel"
        identical = predicate.score("Beijing Hotel", 5)
        assert swapped < identical

    def test_deletion_cost_reduces_score(self, company_strings):
        predicate = GES().fit(company_strings)
        full = predicate.score("Morgan Stanley Group Inc.", 0)
        partial = predicate.score("Morgan Stanley Group Inc. Extra Words Here", 0)
        assert partial < full

    def test_insertion_cost_uses_cins(self, company_strings):
        cheap = GES(cins=0.1).fit(company_strings)
        expensive = GES(cins=0.9).fit(company_strings)
        query = "Morgan Group"  # needs insertions to become the full name
        assert cheap.score(query, 0) >= expensive.score(query, 0)

    def test_ges_score_empty_query(self, company_strings):
        predicate = GES().fit(company_strings)
        assert predicate.ges_score([], ["X"]) in (0.0, 1.0)


class TestGESJaccard:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            GESJaccard(threshold=1.5)

    def test_filter_is_upper_bound_of_exact_score(self, company_strings):
        """Equation 4.7 over-estimates GES, so filtering keeps true positives."""
        predicate = GESJaccard(threshold=0.0).fit(company_strings)
        query_words = predicate._query_words("Morgan Stanley Grup Inc.")
        for tid in range(len(company_strings)):
            tuple_words = predicate._word_lists[tid]
            filter_score = predicate.filter_score(query_words, tuple_words)
            exact = predicate.ges_score(query_words, tuple_words)
            assert filter_score >= exact - 1e-9

    def test_zero_threshold_matches_plain_ges_on_candidates(self, company_strings):
        ges = GES().fit(company_strings)
        ges_jaccard = GESJaccard(threshold=0.0).fit(company_strings)
        query = "Morgan Stanley Grup Inc."
        exact = dict(ges.rank(query))
        filtered = dict(ges_jaccard.rank(query))
        for tid, score in filtered.items():
            assert score == pytest.approx(exact[tid])

    def test_higher_threshold_prunes_more(self, company_strings):
        query = "Morgan Stanley Grup Inc."
        loose = GESJaccard(threshold=0.5).fit(company_strings)
        strict = GESJaccard(threshold=0.95).fit(company_strings)
        assert len(strict.rank(query)) <= len(loose.rank(query))

    def test_exact_match_survives_any_threshold(self, company_strings):
        predicate = GESJaccard(threshold=0.9).fit(company_strings)
        ranked = predicate.rank(company_strings[0])
        assert ranked and ranked[0].tid == 0
        assert ranked[0].score == pytest.approx(1.0)


class TestGESApx:
    def test_is_a_ges_jaccard(self, company_strings):
        predicate = GESApx(threshold=0.5).fit(company_strings)
        assert isinstance(predicate, GESJaccard)

    def test_signatures_precomputed_for_base_words(self, company_strings):
        predicate = GESApx().fit(company_strings)
        assert "MORGAN" in predicate._signatures
        assert len(predicate._signatures["MORGAN"]) == predicate.hasher.num_hashes

    def test_exact_match_found(self, company_strings):
        predicate = GESApx(threshold=0.7).fit(company_strings)
        ranked = predicate.rank(company_strings[3])
        assert ranked and ranked[0].tid == 3

    def test_more_hashes_approximates_jaccard_filter(self, company_strings):
        """With many hash functions GESapx converges to GESJaccard (paper 5.4.1)."""
        query = "Morgan Stanley Grup Inc."
        exact = GESJaccard(threshold=0.6).fit(company_strings)
        coarse = GESApx(threshold=0.6, num_hashes=2).fit(company_strings)
        fine = GESApx(threshold=0.6, num_hashes=64).fit(company_strings)
        exact_tids = {scored.tid for scored in exact.rank(query)}
        fine_tids = {scored.tid for scored in fine.rank(query)}
        coarse_tids = {scored.tid for scored in coarse.rank(query)}
        assert len(fine_tids ^ exact_tids) <= len(coarse_tids ^ exact_tids) + 1

    def test_scores_are_exact_ges_for_survivors(self, company_strings):
        ges = GES().fit(company_strings)
        apx = GESApx(threshold=0.5).fit(company_strings)
        query = "Morgan Stanley Group Inc."
        exact = dict(ges.rank(query))
        for tid, score in apx.rank(query):
            assert score == pytest.approx(exact[tid])


class TestSoftTFIDF:
    def test_theta_validation(self):
        with pytest.raises(ValueError):
            SoftTFIDF(theta=-0.1)

    def test_identity_scores_close_to_one(self, company_strings):
        predicate = SoftTFIDF().fit(company_strings)
        for tid in (0, 5, 9):
            assert predicate.score(company_strings[tid], tid) == pytest.approx(1.0, abs=1e-6)

    def test_token_swap_robustness(self, company_strings):
        """SoftTFIDF ignores word order (paper Table 5.5)."""
        predicate = SoftTFIDF().fit(company_strings)
        assert predicate.score("Hotel Beijing", 5) == pytest.approx(
            predicate.score("Beijing Hotel", 5), rel=1e-6
        )

    def test_close_words_matched_through_jaro_winkler(self, company_strings):
        predicate = SoftTFIDF().fit(company_strings)
        # "Stanly" ~ "Stanley" above the 0.8 Jaro-Winkler threshold.
        assert predicate.score("Morgan Stanly Group Inc.", 0) > 0.8

    def test_theta_one_requires_exact_words(self, company_strings):
        strict = SoftTFIDF(theta=0.999).fit(company_strings)
        relaxed = SoftTFIDF(theta=0.8).fit(company_strings)
        query = "Morgn Stanly Grp Inc."
        assert strict.score(query, 0) <= relaxed.score(query, 0)

    def test_empty_query(self, company_strings):
        predicate = SoftTFIDF().fit(company_strings)
        assert predicate.rank("") == []

    def test_abbreviation_robustness(self, company_strings):
        predicate = SoftTFIDF().fit(company_strings)
        scores = dict(predicate.rank("AT&T Incorporated"))
        assert scores[4] > scores.get(3, 0.0)
