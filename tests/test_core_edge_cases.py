"""Edge-case and robustness tests across every predicate.

These tests exercise the corners the main unit tests do not: degenerate base
relations (single tuple, duplicated tuples, empty strings), unusual query
strings (empty, whitespace, punctuation-only, unicode), and very long
strings.  Every registered predicate must handle all of them without raising
and while respecting the basic ranking contract.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ApproximateSelector
from repro.core.predicates import available_predicates, make_predicate

ALL_PREDICATES = available_predicates()

ODD_QUERIES = [
    "",
    "   ",
    "a",
    "&&&***",
    "Ünïcödé Strîng GmbH",
    "word " * 50,
]


@pytest.mark.parametrize("name", ALL_PREDICATES)
class TestDegenerateRelations:
    def test_single_tuple_relation(self, name):
        # With a single tuple every idf/RS weight is zero, so the weighted
        # predicates may legitimately return no scored candidate; what must
        # hold is that querying never raises and never invents tuple ids.
        predicate = make_predicate(name).fit(["Morgan Stanley Group Inc."])
        ranked = predicate.rank("Morgan Stanley Group Inc.")
        assert all(scored.tid == 0 for scored in ranked)

    def test_relation_with_duplicate_tuples(self, name):
        strings = ["AT&T Inc.", "AT&T Inc.", "IBM Corp."]
        predicate = make_predicate(name).fit(strings)
        scores = {scored.tid: scored.score for scored in predicate.rank("AT&T Inc.")}
        assert scores.get(0) == pytest.approx(scores.get(1))

    def test_relation_containing_empty_string(self, name):
        strings = ["", "Morgan Stanley", "Goldman Sachs"]
        predicate = make_predicate(name).fit(strings)
        ranked = predicate.rank("Morgan Stanley")
        assert ranked and ranked[0].tid == 1

    def test_odd_queries_never_raise(self, name, company_strings):
        predicate = make_predicate(name).fit(company_strings)
        for query in ODD_QUERIES:
            ranked = predicate.rank(query)
            scores = [scored.score for scored in ranked]
            assert scores == sorted(scores, reverse=True)

    def test_unicode_relation(self, name):
        # Filler tuples keep the collection large enough for the RS-weighted
        # predicates to assign positive weights to the accented tokens.
        strings = [
            "Café Müller GmbH",
            "Cafe Muller GmbH",
            "Žižkov Brewery s.r.o.",
            "Nordwind Logistik AG",
            "Österreich Versicherung",
            "Crème Brûlée Catering",
            "Smørrebrød Kitchen ApS",
            "Alpha Beta Gamma Ltd.",
        ]
        predicate = make_predicate(name).fit(strings)
        ranked = predicate.rank("Café Müller GmbH")
        assert ranked and ranked[0].tid == 0


class TestSelectorEdgeCases:
    def test_selector_over_single_string(self):
        selector = ApproximateSelector(["only one"], predicate="bm25")
        assert selector.top_k("only one", k=5)[0].tid == 0

    def test_top_k_zero(self, company_strings):
        selector = ApproximateSelector(company_strings, predicate="jaccard")
        assert selector.top_k("Morgan", k=0) == []

    def test_threshold_above_all_scores(self, company_strings):
        selector = ApproximateSelector(company_strings, predicate="jaccard")
        assert selector.select("Morgan Stanley", threshold=1.1) == []

    def test_very_long_query(self, company_strings):
        selector = ApproximateSelector(company_strings, predicate="cosine")
        long_query = " ".join(company_strings) * 3
        results = selector.rank(long_query)
        assert len(results) == len(company_strings)

    @given(st.text(max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_query_text_property(self, query):
        selector = ApproximateSelector(
            ["Morgan Stanley Group Inc.", "Goldman Sachs", "AT&T Inc."],
            predicate="jaccard",
        )
        results = selector.rank(query)
        for result in results:
            assert 0.0 <= result.score <= 1.0
            assert 0 <= result.tid < 3
