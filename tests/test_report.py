"""Unit tests for the report/export helpers."""

from __future__ import annotations

import csv
import io

import pytest

from repro.eval.report import ResultSink, markdown_table, text_table, to_csv


class TestTextTable:
    def test_alignment_and_widths(self):
        table = text_table(["name", "value"], [["alpha", 1], ["b", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert lines[1].startswith("-----")
        assert lines[2].startswith("alpha")
        # right alignment of the numeric column
        assert lines[3].endswith("22")

    def test_float_formatting(self):
        table = text_table(["x"], [[0.123456]], float_format="{:.2f}")
        assert "0.12" in table

    def test_none_rendered_empty(self):
        table = text_table(["a", "b"], [["x", None]])
        assert table.splitlines()[2].rstrip().endswith("x")


class TestMarkdownTable:
    def test_structure(self):
        table = markdown_table(["a", "b"], [[1, 2]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| 1 | 2 |"


class TestCsv:
    def test_round_trip(self):
        text = to_csv(["a", "b"], [[1, "x,y"], [None, "z"]])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "x,y"]
        assert rows[2] == ["", "z"]


class TestResultSink:
    def test_add_and_columns_union(self):
        sink = ResultSink("demo")
        sink.add({"predicate": "bm25", "MAP": 0.9})
        sink.add({"predicate": "jaccard", "MAP": 0.8, "time": 1.5})
        assert sink.columns == ["predicate", "MAP", "time"]
        assert len(sink) == 2
        assert sink.rows[0] == ["bm25", 0.9, None]

    def test_extend(self):
        sink = ResultSink()
        sink.extend([{"a": 1}, {"a": 2}])
        assert len(sink) == 2

    def test_to_text_includes_title(self):
        sink = ResultSink("My title")
        sink.add({"a": 1})
        assert sink.to_text().startswith("My title")

    def test_to_markdown(self):
        sink = ResultSink("T")
        sink.add({"a": 1})
        markdown = sink.to_markdown()
        assert markdown.startswith("### T")
        assert "| a |" in markdown

    def test_save_dispatches_on_extension(self, tmp_path):
        sink = ResultSink("T")
        sink.add({"a": 1, "b": 2.5})
        csv_path = sink.save(tmp_path / "out.csv")
        md_path = sink.save(tmp_path / "out.md")
        txt_path = sink.save(tmp_path / "out.txt")
        assert csv_path.read_text().startswith("a,b")
        assert md_path.read_text().startswith("### T")
        assert txt_path.read_text().startswith("T")

    def test_save_creates_directories(self, tmp_path):
        sink = ResultSink()
        sink.add({"a": 1})
        path = sink.save(tmp_path / "nested" / "dir" / "out.txt")
        assert path.exists()
