"""Unit tests for the language modeling and HMM predicates."""

from __future__ import annotations

import math

import pytest

from repro.core.predicates import HMM, LanguageModeling
from repro.text.tokenize import WordTokenizer


class TestLanguageModeling:
    def test_family(self):
        assert LanguageModeling.family == "language-modeling"

    def test_identity_query_ranks_itself_first(self, company_strings):
        predicate = LanguageModeling().fit(company_strings)
        for tid in (0, 2, 5, 9):
            assert predicate.rank(company_strings[tid])[0].tid == tid

    def test_scores_are_positive(self, company_strings):
        predicate = LanguageModeling().fit(company_strings)
        for scored in predicate.rank("Morgan Stanley Grp"):
            assert scored.score > 0.0

    def test_only_candidates_scored(self, company_strings):
        predicate = LanguageModeling(tokenizer=WordTokenizer()).fit(company_strings)
        ranked = predicate.rank("Beijing")
        assert {scored.tid for scored in ranked} == {5, 6, 7}

    def test_degenerate_single_token_tuple(self):
        """A tuple whose only token repeats must not blow up (pm clamp)."""
        strings = ["AAA AAA AAA", "AAA BBB"]
        predicate = LanguageModeling(tokenizer=WordTokenizer()).fit(strings)
        ranked = predicate.rank("AAA AAA")
        assert len(ranked) == 2
        assert all(math.isfinite(scored.score) for scored in ranked)

    def test_risk_interpolates_between_pml_and_pavg(self, company_strings):
        predicate = LanguageModeling().fit(company_strings)
        for tuple_pm in predicate._pm:
            for probability in tuple_pm.values():
                assert 0.0 < probability < 1.0

    def test_sum_complement_is_negative(self, company_strings):
        predicate = LanguageModeling().fit(company_strings)
        assert all(value < 0 for value in predicate._sum_complement)

    def test_abbreviation_robustness(self, company_strings):
        predicate = LanguageModeling().fit(company_strings)
        scores = dict(predicate.rank("AT&T Incorporated"))
        assert scores[4] > scores[3]


class TestHMM:
    def test_a0_validation(self):
        with pytest.raises(ValueError):
            HMM(a0=0.0)
        with pytest.raises(ValueError):
            HMM(a0=1.0)

    def test_default_a0_matches_paper(self):
        predicate = HMM()
        assert predicate.a0 == 0.2
        assert predicate.a1 == 0.8

    def test_identity_query_scores_maximally(self, company_strings):
        # "Beijing Hotel" / "Hotel Beijing" share identical padded q-gram
        # multisets, so ties are possible; the identity tuple must reach the
        # maximum score for its own string.
        predicate = HMM().fit(company_strings)
        for tid in range(len(company_strings)):
            ranked = predicate.rank(company_strings[tid])
            assert predicate.score(company_strings[tid], tid) == pytest.approx(ranked[0].score)

    def test_scores_at_least_one(self, company_strings):
        """Every factor is (1 + something positive), so scores are >= 1."""
        predicate = HMM().fit(company_strings)
        for scored in predicate.rank("Morgan Stanley"):
            assert scored.score >= 1.0

    def test_manual_two_tuple_example(self):
        strings = ["A B", "A C"]
        predicate = HMM(tokenizer=WordTokenizer(), a0=0.2).fit(strings)
        # P(B|GE) = 1/4, P(B|D0) = 1/2 -> factor 1 + 0.8*0.5 / (0.2*0.25) = 9
        # P(A|GE) = 2/4, P(A|D0) = 1/2 -> factor 1 + 0.8*0.5 / (0.2*0.5) = 5
        scores = dict(predicate.rank("A B"))
        assert scores[0] == pytest.approx(45.0)
        assert scores[1] == pytest.approx(5.0)

    def test_query_token_multiplicity_matters(self, company_strings):
        predicate = HMM(tokenizer=WordTokenizer()).fit(company_strings)
        once = dict(predicate.rank("Beijing"))[5]
        twice = dict(predicate.rank("Beijing Beijing"))[5]
        assert twice == pytest.approx(once * once)

    def test_a0_extremes_change_scores_not_too_much(self, company_strings):
        """Accuracy should not be very sensitive to a0 (paper 5.3.2)."""
        low = HMM(a0=0.1).fit(company_strings)
        high = HMM(a0=0.5).fit(company_strings)
        query = "Morgan Stanly Group Inc."
        top_low = [scored.tid for scored in low.rank(query, limit=3)]
        top_high = [scored.tid for scored in high.rank(query, limit=3)]
        assert top_low[0] == top_high[0]

    def test_abbreviation_robustness_with_word_tokens(self, company_strings):
        # At the word level the rare token AT&T outweighs the frequent token
        # Incorporated, so "AT&T Inc." beats "IBM Incorporated".
        predicate = HMM(tokenizer=WordTokenizer()).fit(company_strings)
        scores = dict(predicate.rank("AT&T Incorporated"))
        assert scores[4] > scores[3]
