"""Unit tests for the SQL parser."""

from __future__ import annotations

import pytest

from repro.dbengine.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    CreateTable,
    Delete,
    DropTable,
    FunctionCall,
    InList,
    InSubquery,
    Insert,
    IsNull,
    Join,
    Literal,
    ScalarSubquery,
    Select,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
)
from repro.dbengine.errors import ParseError
from repro.dbengine.parser import parse_expression, parse_statement, parse_statements


class TestExpressionParsing:
    def test_literals(self):
        assert parse_expression("42") == Literal(42)
        assert parse_expression("4.5") == Literal(4.5)
        assert parse_expression("'abc'") == Literal("abc")
        assert parse_expression("NULL") == Literal(None)
        assert parse_expression("TRUE") == Literal(True)

    def test_column_references(self):
        assert parse_expression("price") == ColumnRef("price")
        assert parse_expression("t.price") == ColumnRef("price", table="t")

    def test_arithmetic_precedence(self):
        expression = parse_expression("1 + 2 * 3")
        assert isinstance(expression, BinaryOp)
        assert expression.op == "+"
        assert isinstance(expression.right, BinaryOp)
        assert expression.right.op == "*"

    def test_parentheses_override_precedence(self):
        expression = parse_expression("(1 + 2) * 3")
        assert expression.op == "*"
        assert expression.left.op == "+"

    def test_unary_minus(self):
        expression = parse_expression("-x")
        assert isinstance(expression, UnaryOp)
        assert expression.op == "-"

    def test_comparison_and_boolean(self):
        expression = parse_expression("a = 1 AND b > 2 OR c < 3")
        assert expression.op == "OR"
        assert expression.left.op == "AND"

    def test_not_equal_normalized(self):
        assert parse_expression("a != 1").op == "<>"
        assert parse_expression("a <> 1").op == "<>"

    def test_function_call(self):
        expression = parse_expression("LOG(x)")
        assert isinstance(expression, FunctionCall)
        assert expression.name == "LOG"
        assert expression.args == (ColumnRef("x"),)

    def test_count_star(self):
        expression = parse_expression("COUNT(*)")
        assert isinstance(expression, FunctionCall)
        assert isinstance(expression.args[0], Star)

    def test_count_distinct(self):
        expression = parse_expression("COUNT(DISTINCT t.x)")
        assert expression.distinct is True

    def test_in_list(self):
        expression = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expression, InList)
        assert len(expression.items) == 3

    def test_not_in_subquery(self):
        expression = parse_expression("x NOT IN (SELECT y FROM t)")
        assert isinstance(expression, InSubquery)
        assert expression.negated

    def test_between(self):
        expression = parse_expression("x BETWEEN 1 AND 5")
        assert isinstance(expression, Between)

    def test_is_null_and_is_not_null(self):
        assert isinstance(parse_expression("x IS NULL"), IsNull)
        assert parse_expression("x IS NOT NULL").negated

    def test_like(self):
        expression = parse_expression("name LIKE 'A%'")
        assert expression.op == "LIKE"

    def test_case_expression(self):
        expression = parse_expression("CASE WHEN x > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(expression, CaseExpression)
        assert len(expression.whens) == 1
        assert expression.default == Literal("small")

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE END")

    def test_scalar_subquery(self):
        expression = parse_expression("(SELECT COUNT(*) FROM t)")
        assert isinstance(expression, ScalarSubquery)

    def test_string_concatenation(self):
        assert parse_expression("a || b").op == "||"


class TestSelectParsing:
    def test_minimal_select(self):
        statement = parse_statement("SELECT 1")
        assert isinstance(statement, Select)
        assert statement.core.sources == ()

    def test_select_star(self):
        statement = parse_statement("SELECT * FROM t")
        assert isinstance(statement.core.items[0].expression, Star)

    def test_select_table_star(self):
        statement = parse_statement("SELECT t.* FROM t")
        assert statement.core.items[0].expression.table == "t"

    def test_aliases(self):
        statement = parse_statement("SELECT a AS x, b y FROM t")
        assert statement.core.items[0].alias == "x"
        assert statement.core.items[1].alias == "y"

    def test_table_alias_forms(self):
        statement = parse_statement("SELECT * FROM base AS b1, other o2")
        first, second = statement.core.sources
        assert first.alias == "b1"
        assert second.alias == "o2"

    def test_subquery_in_from_requires_alias(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM (SELECT 1)")

    def test_subquery_in_from(self):
        statement = parse_statement("SELECT * FROM (SELECT 1 AS x) sub")
        assert isinstance(statement.core.sources[0], SubqueryRef)

    def test_where_group_having(self):
        statement = parse_statement(
            "SELECT tid, COUNT(*) FROM tok WHERE token = 'A' "
            "GROUP BY tid HAVING COUNT(*) > 2"
        )
        core = statement.core
        assert core.where is not None
        assert len(core.group_by) == 1
        assert core.having is not None

    def test_explicit_join(self):
        statement = parse_statement(
            "SELECT * FROM a INNER JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        source = statement.core.sources[0]
        assert isinstance(source, Join)
        assert source.kind == "LEFT"
        assert isinstance(source.left, Join)
        assert source.left.kind == "INNER"

    def test_union_all(self):
        statement = parse_statement("SELECT 1 UNION ALL SELECT 2 UNION SELECT 3")
        assert len(statement.cores) == 3
        assert statement.union_alls == (True, False)

    def test_order_by_and_limit(self):
        statement = parse_statement("SELECT a FROM t ORDER BY a DESC, b LIMIT 5")
        assert statement.order_by[0].descending is True
        assert statement.order_by[1].descending is False
        assert statement.limit == 5

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").core.distinct is True

    def test_trailing_semicolon_allowed(self):
        assert isinstance(parse_statement("SELECT 1;"), Select)

    def test_garbage_after_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 SELECT 2")


class TestOtherStatements:
    def test_create_table(self):
        statement = parse_statement(
            "CREATE TABLE base_tokens (tid INTEGER, token VARCHAR(255))"
        )
        assert isinstance(statement, CreateTable)
        assert statement.columns[0] == ("tid", "INTEGER")
        assert statement.columns[1][0] == "token"

    def test_create_table_if_not_exists(self):
        statement = parse_statement("CREATE TABLE IF NOT EXISTS t (a INT)")
        assert statement.if_not_exists

    def test_drop_table(self):
        statement = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(statement, DropTable)
        assert statement.if_exists

    def test_delete(self):
        statement = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, Delete)
        assert statement.where is not None

    def test_insert_values(self):
        statement = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, Insert)
        assert len(statement.values) == 2
        assert statement.columns == ("a", "b")

    def test_insert_select(self):
        statement = parse_statement(
            "INSERT INTO scores (tid, score) SELECT tid, COUNT(*) FROM t GROUP BY tid"
        )
        assert statement.select is not None
        assert statement.values == ()

    def test_unsupported_statement(self):
        with pytest.raises(ParseError):
            parse_statement("UPDATE t SET a = 1")

    def test_parse_script(self):
        statements = parse_statements(
            "CREATE TABLE t (a INT); INSERT INTO t (a) VALUES (1); SELECT * FROM t;"
        )
        assert len(statements) == 3
        assert isinstance(statements[0], CreateTable)
        assert isinstance(statements[1], Insert)
        assert isinstance(statements[2], Select)

    def test_paper_figure_4_1_parses(self):
        """The IntersectSize query of Figure 4.1 must be accepted verbatim."""
        statement = parse_statement(
            "INSERT INTO INTERSECT_SCORES (tid, score) "
            "SELECT R1.tid, COUNT(*) "
            "FROM BASE_TOKENS R1, QUERY_TOKENS R2 "
            "WHERE R1.token = R2.token "
            "GROUP BY R1.tid"
        )
        assert isinstance(statement, Insert)

    def test_paper_figure_4_4_parses(self):
        """The language-modeling query of Figure 4.4 must be accepted."""
        statement = parse_statement(
            "SELECT B1.tid2, EXP(B1.score + B2.sumcompm) "
            "FROM (SELECT P1.tid AS tid1, T2.tid AS tid2, "
            "SUM(LOG(P1.pm)) - SUM(LOG(1.0 - P1.pm)) - SUM(LOG(P1.cfcs)) AS score "
            "FROM BASE_PM P1, QUERY_TOKENS T2 "
            "WHERE P1.token = T2.token "
            "GROUP BY P1.tid, T2.tid) B1, BASE_SUMCOMPMBASE B2 "
            "WHERE B1.tid1 = B2.tid"
        )
        assert isinstance(statement, Select)
