"""Query fast-path benchmark -- old-path vs. fast-path on the direct realization.

Times the three query-execution fast paths this repo's perf track introduced
against the seed behaviour, on a generated UIS-style company-names relation
(the paper's accuracy-benchmark generator at performance scale):

* ``top_k`` -- seed path scores every candidate sharing a q-gram and fully
  sorts the dict; fast path accumulates over precomputed weighted postings
  with max-score early termination (monotone-sum predicates) or a size-k
  heap.  Results must be identical, tuple for tuple and bit for bit.
* ``select`` -- seed path sorts the full candidate set and then filters;
  fast path filters first and sorts survivors only.
* ``join (top_k)`` -- seed path runs a thresholded selection per probe and
  sorts it; fast path probes through the predicate's pruned ``top_k``.

Writes ``BENCH_query_fastpath.json`` (queries/sec, candidates scored,
postings skipped, speedups) to the repository root -- the first point of the
repo's benchmark trajectory that future perf PRs are measured against.

Standalone usage (CI runs the smoke variant)::

    PYTHONPATH=src python benchmarks/bench_query_fastpath.py          # full
    PYTHONPATH=src python benchmarks/bench_query_fastpath.py --smoke  # tiny

The smoke run exits non-zero if the fast path scores more candidates than
the naive path anywhere, or if any result diverges -- a cheap CI guard
against silently losing the pruning.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for _path in (str(_SRC), str(_HERE)):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.core.join import ApproximateJoiner  # noqa: E402
from repro.core.predicates.base import ScoredTuple  # noqa: E402
from repro.core.predicates.registry import make_predicate  # noqa: E402
from repro.datagen import make_dataset  # noqa: E402
from repro.obs import MetricsRegistry, NOOP_TRACER, bench_envelope, perf_clock  # noqa: E402

#: Monotone-sum predicates with the max-score pruned top_k fast path.
PREDICATES = ["bm25", "cosine", "weighted_match"]
TOP_K = 10
SELECT_THRESHOLD = 3.0  # score-valued predicates; selective on CU data
JOIN_PROBES = 100


def _seed_scores(predicate, query: str):
    """The seed accumulation: per-posting weight lookups on the raw index.

    Before weighted postings landed, every candidate posting paid a
    ``doc_weights[tid].get(token)`` (aggregate family) or weight-table lookup
    (overlap family) at query time.  Tokens are visited in sorted order --
    the same canonical order the fast paths use -- so scores stay
    bit-identical and only the cost model differs.
    """
    scores = {}
    index = predicate._index
    if hasattr(predicate, "_doc_weights"):  # cosine / bm25
        query_weights = predicate._query_weights(query)
        doc_weights = predicate._doc_weights
        for token in sorted(query_weights):
            query_weight = query_weights[token]
            if query_weight == 0.0:
                continue
            for tid, _ in index.postings(token):
                doc_weight = doc_weights[tid].get(token, 0.0)
                if doc_weight:
                    scores[tid] = scores.get(tid, 0.0) + query_weight * doc_weight
    else:  # weighted_match
        for token in sorted(predicate._query_tokens(query)):
            weight = predicate._weight(token)
            if weight == 0.0:
                continue
            for tid, _ in index.postings(token):
                scores[tid] = scores.get(tid, 0.0) + weight
    return scores


def _naive_top_k(predicate, query: str, k: int):
    """The seed top-k path: score every candidate, fully sort, slice."""
    scores = _seed_scores(predicate, query)
    ranked = sorted(
        (ScoredTuple(tid, score) for tid, score in scores.items()),
        key=lambda st: (-st.score, st.tid),
    )
    return ranked[:k], len(scores)


def _naive_select(predicate, query: str, threshold: float):
    """The seed selection path: sort the full candidate set, then filter."""
    scores = _seed_scores(predicate, query)
    ranked = sorted(
        (ScoredTuple(tid, score) for tid, score in scores.items()),
        key=lambda st: (-st.score, st.tid),
    )
    return [st for st in ranked if st.score >= threshold], len(scores)


def _timed(fn, queries):
    started = perf_clock()
    outputs = [fn(query) for query in queries]
    return outputs, perf_clock() - started


def bench_predicate(name: str, strings, queries) -> dict:
    predicate = make_predicate(name).fit(strings)
    result: dict = {"predicate": name}

    # -- top_k ---------------------------------------------------------------
    naive_out, naive_seconds = _timed(
        lambda q: _naive_top_k(predicate, q, TOP_K), queries
    )
    fast_out, fast_seconds = _timed(lambda q: predicate.top_k(q, TOP_K), queries)
    identical = all(
        [(st.tid, st.score) for st in fast] == [(st.tid, st.score) for st in naive]
        for fast, (naive, _) in zip(fast_out, naive_out)
    )
    naive_candidates = sum(count for _, count in naive_out)
    fast_candidates = postings_skipped = postings_total = 0
    for query in queries:
        predicate.top_k(query, TOP_K)
        stats = predicate.pruning_stats
        if stats is not None:
            fast_candidates += stats.candidates_scored
            postings_skipped += stats.postings_skipped
            postings_total += stats.postings_total
    result["top_k"] = {
        "k": TOP_K,
        "naive_seconds": naive_seconds,
        "fast_seconds": fast_seconds,
        "naive_qps": len(queries) / naive_seconds if naive_seconds else None,
        "fast_qps": len(queries) / fast_seconds if fast_seconds else None,
        "speedup": naive_seconds / fast_seconds if fast_seconds else None,
        "identical_results": identical,
        "naive_candidates_scored": naive_candidates,
        "fast_candidates_scored": fast_candidates,
        "postings_skipped": postings_skipped,
        "postings_total": postings_total,
    }

    # -- select ---------------------------------------------------------------
    naive_sel, naive_sel_seconds = _timed(
        lambda q: _naive_select(predicate, q, SELECT_THRESHOLD), queries
    )
    fast_sel, fast_sel_seconds = _timed(
        lambda q: predicate.select(q, SELECT_THRESHOLD), queries
    )
    sel_identical = all(
        [(st.tid, st.score) for st in fast] == [(st.tid, st.score) for st in naive]
        for fast, (naive, _) in zip(fast_sel, naive_sel)
    )
    result["select"] = {
        "threshold": SELECT_THRESHOLD,
        "naive_seconds": naive_sel_seconds,
        "fast_seconds": fast_sel_seconds,
        "speedup": naive_sel_seconds / fast_sel_seconds if fast_sel_seconds else None,
        "identical_results": sel_identical,
    }

    # -- join probing via top_k ------------------------------------------------
    probe = queries[:JOIN_PROBES]
    joiner = ApproximateJoiner(strings, predicate=predicate, threshold=SELECT_THRESHOLD)

    def naive_join():
        matches = []
        for probe_id, text in enumerate(probe):
            selected, _ = _naive_select(predicate, text, SELECT_THRESHOLD)
            matches.extend(
                (probe_id, st.tid, st.score) for st in selected[:TOP_K]
            )
        return matches

    started = perf_clock()
    naive_join_matches = naive_join()
    naive_join_seconds = perf_clock() - started
    started = perf_clock()
    fast_join_matches = [
        (m.left_id, m.right_id, m.score)
        for m in joiner.join(probe, threshold=SELECT_THRESHOLD, top_k=TOP_K)
    ]
    fast_join_seconds = perf_clock() - started
    result["join_top_k"] = {
        "probes": len(probe),
        "naive_seconds": naive_join_seconds,
        "fast_seconds": fast_join_seconds,
        "speedup": (
            naive_join_seconds / fast_join_seconds if fast_join_seconds else None
        ),
        "identical_results": naive_join_matches == fast_join_matches,
    }
    return result


def run(size: int, num_queries: int, seed: int = 42) -> dict:
    dataset = make_dataset("CU1", size=size, num_clean=max(50, size // 10), seed=seed)
    strings = dataset.strings
    step = max(1, len(strings) // num_queries)
    queries = strings[::step][:num_queries]
    return bench_envelope(
        benchmark="query_fastpath",
        relation={"generator": "UIS company names (CU1)", "size": len(strings)},
        config={
            "top_k": TOP_K,
            "select_threshold": SELECT_THRESHOLD,
            "num_queries": len(queries),
            "join_probes": min(JOIN_PROBES, len(queries)),
            "seed": seed,
        },
        results=[bench_predicate(name, strings, queries) for name in PREDICATES],
    )


def obs_overhead(size: int, num_queries: int, rounds: int = 5, seed: int = 42) -> dict:
    """Cost of the disabled observability layer around real query work.

    Times the same ``top_k`` workload bare and wrapped the way the engine
    wraps it when tracing is off -- a counter increment, two no-op spans and
    a histogram observation per query -- and reports the best-of-``rounds``
    ratio.  The no-op path must stay within noise (CI asserts <= 5%).
    """
    dataset = make_dataset("CU1", size=size, num_clean=max(50, size // 10), seed=seed)
    strings = dataset.strings
    step = max(1, len(strings) // num_queries)
    queries = strings[::step][:num_queries]
    predicate = make_predicate("cosine").fit(strings)
    metrics = MetricsRegistry()

    def bare() -> None:
        for query in queries:
            predicate.top_k(query, TOP_K)

    def wrapped() -> None:
        for query in queries:
            metrics.inc("queries_total")
            started = perf_clock()
            with NOOP_TRACER.span("engine.query", op="top_k", k=TOP_K), NOOP_TRACER.span(
                "execute.direct"
            ):
                predicate.top_k(query, TOP_K)
            metrics.observe("latency.engine.query", perf_clock() - started)

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(rounds):
            started = perf_clock()
            fn()
            best = min(best, perf_clock() - started)
        return best

    bare()  # warm caches identically for both measurements
    bare_seconds = best_of(bare)
    wrapped_seconds = best_of(wrapped)
    return {
        "bare_seconds": bare_seconds,
        "wrapped_seconds": wrapped_seconds,
        "overhead_ratio": wrapped_seconds / bare_seconds if bare_seconds else 1.0,
        "rounds": rounds,
        "num_queries": len(queries),
    }


def check(report: dict, require_speedup: float = 0.0) -> list:
    """Guard conditions; returns a list of human-readable failures."""
    failures = []
    for entry in report["results"]:
        name = entry["predicate"]
        top_k = entry["top_k"]
        if not top_k["identical_results"]:
            failures.append(f"{name}: top_k fast path diverged from the naive path")
        if not entry["select"]["identical_results"]:
            failures.append(f"{name}: select fast path diverged from the naive path")
        if not entry["join_top_k"]["identical_results"]:
            failures.append(f"{name}: join top_k fast path diverged")
        if top_k["fast_candidates_scored"] > top_k["naive_candidates_scored"]:
            failures.append(
                f"{name}: fast path scored more candidates than naive "
                f"({top_k['fast_candidates_scored']} > "
                f"{top_k['naive_candidates_scored']}) -- pruning lost"
            )
        if require_speedup and top_k["speedup"] < require_speedup:
            failures.append(
                f"{name}: top_k speedup {top_k['speedup']:.2f}x "
                f"< required {require_speedup}x"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus, correctness guard only (CI perf-smoke job)",
    )
    parser.add_argument("--size", type=int, default=None, help="relation size")
    parser.add_argument("--queries", type=int, default=None, help="number of queries")
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=0.0,
        help="fail unless every predicate's top_k speedup reaches this factor",
    )
    parser.add_argument(
        "--obs-overhead",
        action="store_true",
        help="also measure the disabled-tracing overhead (CI asserts <= --obs-overhead-limit)",
    )
    parser.add_argument(
        "--obs-overhead-limit",
        type=float,
        default=1.05,
        help="maximum tolerated wrapped/bare ratio for the no-op tracer path",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=_HERE.parent / "BENCH_query_fastpath.json",
        help="output JSON path (default: repo root BENCH_query_fastpath.json)",
    )
    args = parser.parse_args(argv)

    size = args.size or (500 if args.smoke else 10_000)
    num_queries = args.queries or (10 if args.smoke else 50)
    report = run(size=size, num_queries=num_queries)
    report["smoke"] = bool(args.smoke)

    failures = check(report, require_speedup=args.require_speedup)

    if args.obs_overhead:
        overhead = obs_overhead(size=size, num_queries=num_queries)
        report["obs_overhead"] = overhead
        print(
            f"obs overhead (no-op tracer): bare {overhead['bare_seconds']:.4f}s, "
            f"wrapped {overhead['wrapped_seconds']:.4f}s, "
            f"ratio {overhead['overhead_ratio']:.4f} "
            f"(limit {args.obs_overhead_limit})"
        )
        if overhead["overhead_ratio"] > args.obs_overhead_limit:
            failures.append(
                f"no-op tracer overhead {overhead['overhead_ratio']:.4f}x exceeds "
                f"the {args.obs_overhead_limit}x limit"
            )

    report["failures"] = failures

    for entry in report["results"]:
        top_k = entry["top_k"]
        print(
            f"{entry['predicate']:>15}  top_k(k={top_k['k']}): "
            f"{top_k['speedup']:.2f}x ({top_k['naive_qps']:.0f} -> "
            f"{top_k['fast_qps']:.0f} q/s), candidates "
            f"{top_k['naive_candidates_scored']} -> "
            f"{top_k['fast_candidates_scored']}, postings skipped "
            f"{top_k['postings_skipped']}/{top_k['postings_total']}  |  "
            f"select: {entry['select']['speedup']:.2f}x  |  "
            f"join top_k: {entry['join_top_k']['speedup']:.2f}x"
        )

    if not args.smoke:
        args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all fast paths exact; pruning intact")
    return 0


def test_query_fastpath(benchmark):
    """Pytest harness entry: small-scale run with the exactness guards."""
    report = benchmark.pedantic(
        lambda: run(size=1500, num_queries=20), rounds=1, iterations=1
    )
    failures = check(report)
    assert not failures, failures
    from _bench_support import format_table, record_report

    rows = [
        [
            entry["predicate"],
            f"{entry['top_k']['speedup']:.2f}x",
            f"{entry['top_k']['naive_candidates_scored']:,}",
            f"{entry['top_k']['fast_candidates_scored']:,}",
            f"{entry['top_k']['postings_skipped']:,}",
            f"{entry['select']['speedup']:.2f}x",
            f"{entry['join_top_k']['speedup']:.2f}x",
        ]
        for entry in report["results"]
    ]
    record_report(
        "query_fastpath",
        f"Query fast paths -- {report['relation']['size']} tuples, "
        f"k={TOP_K}, threshold {SELECT_THRESHOLD}",
        format_table(
            [
                "predicate",
                "top_k speedup",
                "naive cand.",
                "fast cand.",
                "postings skipped",
                "select speedup",
                "join speedup",
            ],
            rows,
        ),
        notes=(
            "Fast paths must be exact: identical (tid, score) lists, fewer "
            "candidates scored.  The standalone script writes the "
            "BENCH_query_fastpath.json trajectory point at full scale."
        ),
    )


if __name__ == "__main__":
    raise SystemExit(main())
