"""Experiment E5 -- Table 5.6: accuracy under increasing edit error.

Datasets F3, F4 and F5 contain only character edit errors with increasing
extent (10%, 20%, 30% of positions).  The paper groups predicates by their
accuracy:

    predicate group                       F3    F4    F5
    GES                                   1.0   0.99  0.97
    BM25, HMM, LM, SoftTFIDF w/JW         1.0   0.97  0.91
    edit distance                         0.99  0.97  0.90
    WM, WJ, Cosine                        0.99  0.93  0.85
    Jaccard, IntersectSize                0.99  0.91  0.81

Expected shape: accuracy degrades as the edit extent grows, GES is the most
resilient, and the unweighted overlap predicates degrade the most.
"""

from __future__ import annotations

from _bench_support import (
    ACCURACY_QUERIES,
    DISPLAY_NAMES,
    accuracy_dataset,
    format_table,
    record_report,
)

from repro.eval import ExperimentRunner

PREDICATES = [
    "ges",
    "bm25",
    "hmm",
    "lm",
    "soft_tfidf",
    "edit_distance",
    "weighted_match",
    "weighted_jaccard",
    "cosine",
    "jaccard",
    "intersect",
]
DATASETS = ["F3", "F4", "F5"]


def _run() -> dict:
    results: dict = {}
    for dataset_name in DATASETS:
        dataset = accuracy_dataset(dataset_name)
        runner = ExperimentRunner(dataset, dataset_name)
        for predicate in PREDICATES:
            accuracy = runner.evaluate(predicate, num_queries=ACCURACY_QUERIES)
            results[(dataset_name, predicate)] = accuracy.mean_average_precision
    return results


def test_table_5_6_edit_error_accuracy(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [DISPLAY_NAMES[predicate]]
        + [f"{results[(dataset, predicate)]:.2f}" for dataset in DATASETS]
        for predicate in PREDICATES
    ]
    table = format_table(["predicate", "F3 (10%)", "F4 (20%)", "F5 (30%)"], rows)
    record_report(
        "table_5_6",
        "Table 5.6 -- accuracy (MAP) with only edit errors of increasing extent",
        table,
        notes=(
            "Expected shape: every predicate degrades from F3 to F5; GES stays "
            "highest; unweighted overlap predicates degrade the most."
        ),
    )

    for predicate in PREDICATES:
        assert (
            results[("F3", predicate)] >= results[("F5", predicate)] - 0.05
        ), f"{predicate} should degrade with increasing edit error"
    # Edit-oriented predicates stay accurate when the only error type is
    # character edits (the paper's GES row stays >= 0.97; our synthetic edit
    # errors hit word structure a little harder, so the bound is relaxed).
    assert results[("F5", "ges")] >= 0.75
    assert results[("F5", "edit_distance")] >= 0.85
    # Weighted probabilistic predicates beat unweighted overlap under heavy edits.
    assert results[("F5", "bm25")] >= results[("F5", "intersect")] - 0.02
