"""Experiment E3 -- section 5.3.3: accuracy versus q-gram size.

The paper compares q = 2 and q = 3 for the q-gram based predicates on the
dirty datasets and finds q = 2 consistently better:

    q   Jaccard   Cosine   HMM    BM25
    2   0.736     0.783    0.835  0.840
    3   0.671     0.769    0.807  0.805

This benchmark reproduces the comparison (the absolute MAP values depend on
the synthetic data, the ordering q=2 > q=3 is the result under test).
"""

from __future__ import annotations

import pytest

from _bench_support import ACCURACY_QUERIES, accuracy_dataset, format_table, record_report

from repro.core.predicates import make_predicate
from repro.eval import ExperimentRunner
from repro.text.tokenize import QgramTokenizer

PREDICATES = ["jaccard", "cosine", "hmm", "bm25"]
PAPER_VALUES = {
    2: {"jaccard": 0.736, "cosine": 0.783, "hmm": 0.835, "bm25": 0.840},
    3: {"jaccard": 0.671, "cosine": 0.769, "hmm": 0.807, "bm25": 0.805},
}


def _run() -> dict:
    dataset = accuracy_dataset("CU1")
    runner = ExperimentRunner(dataset, "CU1")
    results: dict = {}
    for q in (2, 3):
        for name in PREDICATES:
            predicate = make_predicate(name, tokenizer=QgramTokenizer(q=q))
            accuracy = runner.evaluate(predicate, num_queries=ACCURACY_QUERIES)
            results[(q, name)] = accuracy.mean_average_precision
    return results


def test_qgram_size_accuracy(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for q in (2, 3):
        rows.append(
            [f"q={q} (measured)"] + [f"{results[(q, name)]:.3f}" for name in PREDICATES]
        )
        rows.append(
            [f"q={q} (paper)"] + [f"{PAPER_VALUES[q][name]:.3f}" for name in PREDICATES]
        )
    table = format_table(["setting", "Jaccard", "Cosine", "HMM", "BM25"], rows)
    record_report(
        "qgram_size",
        "Section 5.3.3 -- accuracy (MAP) vs. q-gram size on the dirty dataset CU1",
        table,
        notes="Expected shape: every predicate is at least as accurate with q=2 as with q=3.",
    )
    for name in PREDICATES:
        assert results[(2, name)] >= results[(3, name)] - 0.05, name
