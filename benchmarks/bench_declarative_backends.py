"""Experiment E14 (ablation) -- declarative realizations across backends.

The paper's framework is declarative: every predicate is plain SQL and can
run on any relational backend.  This benchmark checks the property the paper
relies on -- that the declarative realization produces the same ranking as a
hand-written implementation -- and compares preprocessing plus query cost of

* the direct in-memory implementation,
* the declarative realization on the from-scratch SQL engine, and
* the declarative realization on SQLite,

for a representative predicate of each class.
"""

from __future__ import annotations

from repro.obs import perf_clock

from _bench_support import format_table, performance_dataset, record_report

from repro.backends import MemoryBackend, SQLiteBackend
from repro.core.predicates import make_predicate
from repro.declarative import make_declarative_predicate

PREDICATES = ["jaccard", "bm25", "hmm", "lm"]
NUM_TUPLES = 300
NUM_QUERIES = 10


def _time_predicate(predicate, strings, queries) -> tuple:
    started = perf_clock()
    predicate.fit(strings)
    preprocess = perf_clock() - started
    started = perf_clock()
    rankings = [tuple(s.tid for s in predicate.rank(query, limit=5)) for query in queries]
    query_seconds = perf_clock() - started
    return preprocess, query_seconds / len(queries), rankings


def _run() -> dict:
    dataset = performance_dataset(NUM_TUPLES)
    strings = dataset.strings
    queries = [strings[tid] for tid in dataset.sample_query_tids(NUM_QUERIES, seed=4)]
    results: dict = {}
    for name in PREDICATES:
        variants = {
            "direct": make_predicate(name),
            "memory SQL": make_declarative_predicate(name, backend=MemoryBackend()),
            "sqlite": make_declarative_predicate(name, backend=SQLiteBackend()),
        }
        rankings = {}
        for label, predicate in variants.items():
            preprocess, per_query, ranking = _time_predicate(predicate, strings, queries)
            results[(name, label)] = (preprocess, per_query)
            rankings[label] = ranking
        results[(name, "agree")] = (
            rankings["direct"] == rankings["memory SQL"] == rankings["sqlite"]
        )
    return results


def test_declarative_backends(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name in PREDICATES:
        for label in ("direct", "memory SQL", "sqlite"):
            preprocess, per_query = results[(name, label)]
            rows.append(
                [
                    f"{name} ({label})",
                    f"{preprocess * 1000:.1f}",
                    f"{per_query * 1000:.2f}",
                    "yes" if results[(name, "agree")] else "NO",
                ]
            )
    table = format_table(
        ["predicate (realization)", "preprocess (ms)", "query (ms)", "rankings agree"],
        rows,
    )
    record_report(
        "declarative_backends",
        f"Declarative vs. direct realizations ({NUM_TUPLES} tuples, {NUM_QUERIES} queries)",
        table,
        notes=(
            "Expected shape: all three realizations return identical rankings; the "
            "declarative path pays an overhead for SQL execution (the paper's MySQL "
            "numbers correspond to the sqlite column here), with the hand-written "
            "direct implementation fastest."
        ),
    )
    for name in PREDICATES:
        assert results[(name, "agree")], f"{name}: realizations disagree"
