"""Experiment E8 -- Figure 5.2: preprocessing time per predicate.

Figure 5.2 breaks preprocessing into the tokenization phase and the weight
calculation phase for a DBLP-titles dataset of 10,000 records.  Expected
shape (section 5.5.1):

* overlap and edit-based predicates have almost no weight phase;
* aggregate weighted and language modeling predicates spend most of their
  time computing weights (LM is the slowest of the probabilistic ones);
* the combination predicates pay for two-level tokenization, and GESapx is
  the slowest overall because of min-hash signature computation.
"""

from __future__ import annotations

from _bench_support import (
    ALL_PREDICATES,
    DISPLAY_NAMES,
    PERFORMANCE_SIZE,
    format_table,
    performance_dataset,
    record_report,
)

from repro.eval.timing import time_preprocessing


def _run() -> dict:
    strings = performance_dataset(PERFORMANCE_SIZE).strings
    return {name: time_preprocessing(name, strings) for name in ALL_PREDICATES}


def test_figure_5_2_preprocessing_time(benchmark):
    timings = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [
            DISPLAY_NAMES[name],
            f"{timing.tokenization_seconds * 1000:.1f}",
            f"{timing.weights_seconds * 1000:.1f}",
            f"{timing.total_seconds * 1000:.1f}",
        ]
        for name, timing in timings.items()
    ]
    table = format_table(
        ["predicate", "tokenize (ms)", "weights (ms)", "total (ms)"], rows
    )
    from _bench_support import record_json

    record_json(
        "figure_5_2",
        relation=f"DBLP titles x{PERFORMANCE_SIZE}",
        config={"num_tuples": PERFORMANCE_SIZE},
        results=[timing.to_record() for timing in timings.values()],
    )
    record_report(
        "figure_5_2",
        f"Figure 5.2 -- preprocessing time, {PERFORMANCE_SIZE}-tuple titles dataset",
        table,
        notes=(
            "Expected shape: unweighted overlap and edit-based predicates have a "
            "negligible weight phase; LM has the largest weight phase among the "
            "probabilistic predicates; GESapx is the most expensive overall."
        ),
    )

    # Unweighted predicates do essentially no weight computation.
    assert timings["intersect"].weights_seconds <= timings["lm"].weights_seconds
    assert timings["edit_distance"].weights_seconds <= timings["lm"].weights_seconds
    # GESapx preprocessing (signatures) costs more than plain GESJaccard.
    assert timings["ges_apx"].total_seconds >= timings["ges_jaccard"].total_seconds * 0.8
