"""Experiment E9 -- Figure 5.3: average query time per predicate.

Figure 5.3 reports the average query (ranking) time over 100 queries on a
10,000-record titles dataset.  Expected shape (section 5.5.2):

* the single-join predicates (IntersectSize, Jaccard, WeightedMatch,
  WeightedJaccard, HMM, BM25) are the fastest;
* Cosine adds the query-weight computation, LM needs an extra join, so both
  are somewhat slower;
* the combination predicates (GES family, SoftTFIDF) are the slowest because
  every query word must be matched against tuple words;
* edit distance sits in between thanks to its filtering step.
"""

from __future__ import annotations

from _bench_support import (
    ALL_PREDICATES,
    DISPLAY_NAMES,
    PERFORMANCE_QUERIES,
    PERFORMANCE_SIZE,
    format_table,
    performance_dataset,
    record_report,
)

from repro.core.predicates import EditDistance
from repro.eval.timing import time_queries

#: The combination predicates are evaluated on 3-word queries like the paper
#: (section 5.5.3) to keep their quadratic word matching comparable.
COMBINATION = {"ges_jaccard", "ges_apx", "soft_tfidf"}

#: Figure 5.3 covers the predicates the paper times; plain GES (no filter) is
#: not part of the paper's timing figures, only its filtered variants are.
TIMED_PREDICATES = [name for name in ALL_PREDICATES if name != "ges"]

#: Filtering threshold the paper uses for the edit-distance predicate in the
#: performance experiments (section 5.5.2).
EDIT_THRESHOLD = 0.7


class _FilteredEditDistance(EditDistance):
    """Edit distance timed through its filtered selection, as in the paper."""

    def rank(self, query, limit=None):  # noqa: D401 - timing shim
        results = self.select(query, EDIT_THRESHOLD)
        return results[:limit] if limit is not None else results


def _run() -> dict:
    dataset = performance_dataset(PERFORMANCE_SIZE)
    strings = dataset.strings
    tids = dataset.sample_query_tids(PERFORMANCE_QUERIES, seed=5)
    queries = [strings[tid] for tid in tids]
    short_queries = [" ".join(query.split()[:3]) for query in queries]
    timings = {}
    for name in TIMED_PREDICATES:
        workload = short_queries if name in COMBINATION else queries
        if name == "edit_distance":
            timings[name] = time_queries(_FilteredEditDistance(), strings, workload)
        else:
            timings[name] = time_queries(name, strings, workload)
    return timings


def test_figure_5_3_query_time(benchmark):
    timings = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = sorted(
        (
            [DISPLAY_NAMES[name], f"{timing.average_milliseconds:.2f}"]
            for name, timing in timings.items()
        ),
        key=lambda row: float(row[1]),
    )
    table = format_table(["predicate", "avg query time (ms)"], rows)
    from _bench_support import record_json

    record_json(
        "figure_5_3",
        relation=f"DBLP titles x{PERFORMANCE_SIZE}",
        config={
            "num_tuples": PERFORMANCE_SIZE,
            "num_queries": PERFORMANCE_QUERIES,
        },
        results=[timing.to_record() for timing in timings.values()],
    )
    record_report(
        "figure_5_3",
        f"Figure 5.3 -- average query time, {PERFORMANCE_SIZE}-tuple titles dataset, "
        f"{PERFORMANCE_QUERIES} queries",
        table,
        notes=(
            "Expected shape: single-join q-gram predicates (overlap, BM25, HMM) are "
            "fastest; LM is slower; the combination predicates are the slowest "
            "(3-word queries, as in the paper)."
        ),
    )

    fastest_overlap = min(
        timings[name].average_seconds for name in ("intersect", "jaccard", "bm25", "hmm")
    )
    slowest_combination = max(
        timings[name].average_seconds for name in ("ges_jaccard", "soft_tfidf")
    )
    assert slowest_combination >= fastest_overlap
