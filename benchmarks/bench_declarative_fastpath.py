"""Declarative fast-path benchmark -- PR 3 baseline vs. the batched/pruned path.

Times the declarative realization's three fast paths against the PR 3
behaviour (one unbatched, unpruned, unindexed SQL round-trip per query,
reconstructed with ``fastpath=False`` on a fresh backend), on a generated
UIS-style company-names relation over SQLite:

* ``top_k(k=10)`` -- baseline ranks every candidate in Python after pulling
  all scored rows out of SQL; fast path pushes ``ORDER BY score DESC, tid
  LIMIT k`` into the indexed scoring statement.
* ``run_many`` -- baseline executes one statement per query; fast path loads
  the ``QUERY_BATCH``/``QUERY_TOKENS(qid, token)`` schema once and scores the
  whole workload with one grouped statement.
* ``select`` (Jaccard) -- baseline scores everything and filters in Python;
  fast path pushes the length/prefix bounds into the SQL, scoring a fraction
  of the rows with identical results.

Also measured: fitting a second predicate on an already-prepared backend,
which must reuse the shared token/weight cores (counted in executed
preprocessing statements).

Writes ``BENCH_declarative_fastpath.json`` to the repository root.

Standalone usage (CI runs the smoke variant)::

    PYTHONPATH=src python benchmarks/bench_declarative_fastpath.py          # full
    PYTHONPATH=src python benchmarks/bench_declarative_fastpath.py --smoke  # tiny

The smoke run exits non-zero if any fast path loses exactness, if the pruned
select stops scoring fewer candidates than the baseline, or if the second
predicate's fit stops reusing the shared tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for _path in (str(_SRC), str(_HERE)):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.backends import SQLiteBackend  # noqa: E402
from repro.datagen import make_dataset  # noqa: E402
from repro.declarative import make_declarative_predicate  # noqa: E402
from repro.engine.plan import RecordingBackend  # noqa: E402
from repro.obs import MetricsRegistry, Observability, bench_envelope, perf_clock  # noqa: E402

PREDICATES = ["bm25", "cosine", "jaccard"]
TOP_K = 10
SELECT_THRESHOLD = 0.6  # jaccard-valued; selective on CU data
SCORE_TOLERANCE = 1e-9


def _tie_groups(matches, tolerance=SCORE_TOLERANCE):
    """Collapse a ranking into score-tie groups (order-insensitive within)."""
    groups, current, last = [], [], None
    for match in matches:
        if last is not None and abs(match.score - last) > tolerance:
            groups.append(frozenset(current))
            current = []
        current.append(match.tid)
        last = match.score
    if current:
        groups.append(frozenset(current))
    return groups


def _rankings_match(fast, slow):
    """(bit_identical, equivalent): exact tid sequences, or equal tie groups."""
    identical = [m.tid for m in fast] == [m.tid for m in slow]
    equivalent = identical or _tie_groups(fast) == _tie_groups(slow)
    return identical, equivalent


def _timed(fn):
    started = perf_clock()
    output = fn()
    return output, perf_clock() - started


def bench_predicate(name: str, strings, queries) -> dict:
    baseline = make_declarative_predicate(name, backend=SQLiteBackend(), fastpath=False)
    _, baseline_fit_seconds = _timed(lambda: baseline.preprocess(strings))
    fast = make_declarative_predicate(name, backend=SQLiteBackend())
    _, fast_fit_seconds = _timed(lambda: fast.preprocess(strings))
    result: dict = {
        "predicate": name,
        "preprocess": {
            "baseline_seconds": baseline_fit_seconds,
            "fast_seconds": fast_fit_seconds,
        },
    }

    # -- top_k(k=10), one query at a time --------------------------------------
    slow_out, slow_seconds = _timed(
        lambda: [baseline.rank(q, limit=TOP_K) for q in queries]
    )
    fast_out, fast_seconds = _timed(lambda: [fast.top_k(q, TOP_K) for q in queries])
    identical = equivalent = True
    for fast_ranking, slow_ranking in zip(fast_out, slow_out):
        same, close = _rankings_match(fast_ranking, slow_ranking)
        identical &= same
        equivalent &= close
    result["top_k"] = {
        "k": TOP_K,
        "baseline_seconds": slow_seconds,
        "fast_seconds": fast_seconds,
        "baseline_qps": len(queries) / slow_seconds if slow_seconds else None,
        "fast_qps": len(queries) / fast_seconds if fast_seconds else None,
        "speedup": slow_seconds / fast_seconds if fast_seconds else None,
        "rankings_identical": identical,
        "rankings_equivalent": equivalent,
    }

    # -- run_many over the whole workload --------------------------------------
    slow_many, slow_many_seconds = _timed(
        lambda: [baseline.rank(q, limit=TOP_K) for q in queries]
    )
    fast_many, fast_many_seconds = _timed(
        lambda: fast.run_many(queries, op="top_k", k=TOP_K)
    )
    many_identical = many_equivalent = True
    for fast_ranking, slow_ranking in zip(fast_many, slow_many):
        same, close = _rankings_match(fast_ranking, slow_ranking)
        many_identical &= same
        many_equivalent &= close
    result["run_many"] = {
        "num_queries": len(queries),
        "baseline_seconds": slow_many_seconds,
        "fast_seconds": fast_many_seconds,
        "speedup": (
            slow_many_seconds / fast_many_seconds if fast_many_seconds else None
        ),
        "rankings_identical": many_identical,
        "rankings_equivalent": many_equivalent,
        "batched_sql": bool(getattr(fast, "_last_batch_sql", False)),
    }

    # -- thresholded select with in-SQL pruning (jaccard only) -----------------
    if name == "jaccard":
        slow_sel, slow_sel_seconds = _timed(
            lambda: [baseline.select(q, SELECT_THRESHOLD) for q in queries]
        )
        slow_candidates = baseline.last_num_candidates
        fast_sel, fast_sel_seconds = _timed(
            lambda: [fast.select(q, SELECT_THRESHOLD) for q in queries]
        )
        fast_candidates = fast.last_num_candidates
        result["select"] = {
            "threshold": SELECT_THRESHOLD,
            "baseline_seconds": slow_sel_seconds,
            "fast_seconds": fast_sel_seconds,
            "speedup": (
                slow_sel_seconds / fast_sel_seconds if fast_sel_seconds else None
            ),
            "identical_results": fast_sel == slow_sel,
            "baseline_candidates_last_query": slow_candidates,
            "fast_candidates_last_query": fast_candidates,
        }
    return result


def bench_shared_cores(strings) -> dict:
    """Preprocessing-statement counts: the second fit must reuse the core."""
    obs = Observability(metrics=MetricsRegistry())
    recorder = RecordingBackend(SQLiteBackend(), obs=obs)
    counts = {}
    for name in ("bm25", "cosine", "weighted_match"):
        # One fresh registry per fit: its statement counter then counts
        # exactly that fit's statements (the backend itself stays shared, so
        # later fits reuse the token/weight cores the first one built).
        obs.metrics = MetricsRegistry()
        make_declarative_predicate(name, backend=recorder).preprocess(strings)
        counts[name] = int(obs.metrics.value("sql_statements_total"))
    first = counts["bm25"]
    return {
        "preprocessing_statements": counts,
        "second_fit_reuses_core": all(
            count < first for key, count in counts.items() if key != "bm25"
        ),
    }


def _geomean(values) -> float:
    values = [value for value in values if value]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def run(size: int, num_queries: int, seed: int = 42) -> dict:
    dataset = make_dataset("CU1", size=size, num_clean=max(50, size // 10), seed=seed)
    strings = dataset.strings
    step = max(1, len(strings) // num_queries)
    queries = strings[::step][:num_queries]
    report = bench_envelope(
        benchmark="declarative_fastpath",
        relation={"generator": "UIS company names (CU1)", "size": len(strings)},
        config={
            "top_k": TOP_K,
            "select_threshold": SELECT_THRESHOLD,
            "num_queries": len(queries),
            "seed": seed,
        },
        results=[bench_predicate(name, strings, queries) for name in PREDICATES],
        backend="sqlite",
        shared_cores=bench_shared_cores(strings),
    )
    report["overall"] = {
        "top_k_speedup_geomean": _geomean(
            entry["top_k"]["speedup"] for entry in report["results"]
        ),
        "run_many_speedup_geomean": _geomean(
            entry["run_many"]["speedup"] for entry in report["results"]
        ),
    }
    return report


def check(report: dict, require_speedup: float = 0.0) -> list:
    """Guard conditions; returns a list of human-readable failures."""
    failures = []
    if not report["shared_cores"]["second_fit_reuses_core"]:
        failures.append(
            "second predicate fit re-materialized the shared token tables "
            f"({report['shared_cores']['preprocessing_statements']})"
        )
    for entry in report["results"]:
        name = entry["predicate"]
        for section in ("top_k", "run_many"):
            if not entry[section]["rankings_equivalent"]:
                failures.append(f"{name}: {section} fast path diverged from baseline")
        if not entry["run_many"]["batched_sql"]:
            failures.append(f"{name}: run_many stopped using the batched SQL path")
        select = entry.get("select")
        if select is not None:
            if not select["identical_results"]:
                failures.append(f"{name}: pruned select diverged from baseline")
            if (
                select["fast_candidates_last_query"]
                > select["baseline_candidates_last_query"]
            ):
                failures.append(
                    f"{name}: pruned select scored more candidates than the "
                    "baseline -- in-SQL pruning lost"
                )
    if require_speedup:
        # Jaccard's candidate sets are dense (a 10k-row CU relation shares
        # common bigrams everywhere), so its per-query gains are structurally
        # smaller; the bar applies to the workload-level geometric mean.
        for section in ("top_k", "run_many"):
            overall = report["overall"][f"{section}_speedup_geomean"]
            if overall < require_speedup:
                failures.append(
                    f"overall {section} speedup {overall:.2f}x "
                    f"< required {require_speedup}x"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus, correctness/work-reduction guard only (CI job)",
    )
    parser.add_argument("--size", type=int, default=None, help="relation size")
    parser.add_argument("--queries", type=int, default=None, help="number of queries")
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=0.0,
        help="fail unless every top_k/run_many speedup reaches this factor",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=_HERE.parent / "BENCH_declarative_fastpath.json",
        help="output JSON path (default: repo root BENCH_declarative_fastpath.json)",
    )
    args = parser.parse_args(argv)

    size = args.size or (400 if args.smoke else 10_000)
    num_queries = args.queries or (8 if args.smoke else 50)
    report = run(size=size, num_queries=num_queries)
    report["smoke"] = bool(args.smoke)

    failures = check(report, require_speedup=args.require_speedup)
    report["failures"] = failures

    shared = report["shared_cores"]["preprocessing_statements"]
    print(f"preprocessing statements (shared cores): {shared}")
    for entry in report["results"]:
        top_k = entry["top_k"]
        many = entry["run_many"]
        line = (
            f"{entry['predicate']:>10}  top_k(k={top_k['k']}): "
            f"{top_k['speedup']:.2f}x ({top_k['baseline_qps']:.0f} -> "
            f"{top_k['fast_qps']:.0f} q/s)  |  run_many({many['num_queries']}): "
            f"{many['speedup']:.2f}x"
        )
        select = entry.get("select")
        if select is not None:
            line += (
                f"  |  select: {select['speedup']:.2f}x, candidates "
                f"{select['baseline_candidates_last_query']} -> "
                f"{select['fast_candidates_last_query']}"
            )
        print(line)

    overall = report["overall"]
    print(
        f"overall geomean: top_k {overall['top_k_speedup_geomean']:.2f}x, "
        f"run_many {overall['run_many_speedup_geomean']:.2f}x"
    )
    if not args.smoke:
        args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("declarative fast paths exact; batching and pruning intact")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
