"""Experiment E10 -- Figure 5.4: query-time scalability with base-table size.

Figure 5.4 plots query time against the number of tuples (10k to 100k DBLP
titles in the paper).  The predicates form groups:

* G1 = IntersectSize, WeightedMatch, HMM -- a single join with unit query
  weights, the fastest;
* G2 = Jaccard, WeightedJaccard, Cosine, BM25 -- a single join plus query
  weight computation, slightly slower;
* LM -- needs a three-way join, slower still;
* the combination predicates (SoftTFIDF, GESJaccard, GESapx, 3-word queries)
  are the slowest and grow the fastest.

Expected shape: query time grows roughly linearly with the base-table size
and the group ordering G1 <= G2 <= LM <= combination is preserved at every
size.
"""

from __future__ import annotations

from _bench_support import (
    DISPLAY_NAMES,
    SCALABILITY_SIZES,
    format_table,
    performance_dataset,
    record_report,
)

from repro.eval.timing import time_queries

GROUPS = {
    "G1": ["intersect", "weighted_match", "hmm"],
    "G2": ["jaccard", "weighted_jaccard", "cosine", "bm25"],
    "LM": ["lm"],
    "combination": ["soft_tfidf", "ges_jaccard", "ges_apx"],
}
NUM_QUERIES = 15


def _run() -> dict:
    results: dict = {}
    for size in SCALABILITY_SIZES:
        dataset = performance_dataset(size)
        strings = dataset.strings
        tids = dataset.sample_query_tids(NUM_QUERIES, seed=3)
        queries = [strings[tid] for tid in tids]
        short_queries = [" ".join(query.split()[:3]) for query in queries]
        for group, names in GROUPS.items():
            for name in names:
                workload = short_queries if group == "combination" else queries
                timing = time_queries(name, strings, workload)
                results[(size, name)] = timing.average_milliseconds
    return results


def test_figure_5_4_scalability(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for group, names in GROUPS.items():
        for name in names:
            rows.append(
                [f"{group}: {DISPLAY_NAMES[name]}"]
                + [f"{results[(size, name)]:.2f}" for size in SCALABILITY_SIZES]
            )
    table = format_table(
        ["predicate"] + [f"{size} tuples (ms)" for size in SCALABILITY_SIZES], rows
    )
    record_report(
        "figure_5_4",
        "Figure 5.4 -- average query time vs. base-table size",
        table,
        notes=(
            "Expected shape: query time grows with the base-table size for every "
            "predicate; the combination predicates are the slowest group at every "
            "size; G1/G2 remain the fastest."
        ),
    )

    smallest, largest = SCALABILITY_SIZES[0], SCALABILITY_SIZES[-1]
    for names in GROUPS.values():
        for name in names:
            assert results[(largest, name)] >= results[(smallest, name)] * 0.8, name
    # Group ordering at the largest size: G1 fastest, combination slowest.
    g1 = min(results[(largest, name)] for name in GROUPS["G1"])
    combination = max(results[(largest, name)] for name in GROUPS["combination"])
    assert combination >= g1
