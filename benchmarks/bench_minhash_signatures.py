"""Experiment E15 (ablation) -- section 5.4.1: GESapx vs. min-hash signature size.

The paper uses 5 min-hash signatures for GESapx and observes that increasing
the number of signatures costs preprocessing time without significantly
improving accuracy (diminishing returns), while very few signatures lose
accuracy.  This ablation sweeps the signature size on a dirty dataset.
"""

from __future__ import annotations

from repro.obs import perf_clock

from _bench_support import ACCURACY_QUERIES, accuracy_dataset, format_table, record_report

from repro.core.predicates import GESApx, GESJaccard
from repro.eval import ExperimentRunner

SIGNATURE_SIZES = [2, 5, 10, 20]
THRESHOLD = 0.7


def _run() -> dict:
    dataset = accuracy_dataset("CU1")
    runner = ExperimentRunner(dataset, "CU1")
    results: dict = {}
    exact = runner.evaluate(
        GESJaccard(threshold=THRESHOLD), num_queries=ACCURACY_QUERIES
    )
    results["exact"] = exact.mean_average_precision
    for size in SIGNATURE_SIZES:
        started = perf_clock()
        predicate = GESApx(threshold=THRESHOLD, num_hashes=size).fit(dataset.strings)
        preprocess_seconds = perf_clock() - started
        accuracy = runner.evaluate(predicate, num_queries=ACCURACY_QUERIES)
        results[size] = (accuracy.mean_average_precision, preprocess_seconds)
    return results


def test_minhash_signature_size(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [
            f"{size} hashes",
            f"{results[size][0]:.3f}",
            f"{results[size][1] * 1000:.0f}",
        ]
        for size in SIGNATURE_SIZES
    ]
    table = format_table(["GESapx signature size", "MAP", "preprocess (ms)"], rows)
    record_report(
        "minhash_signatures",
        "Section 5.4.1 ablation -- GESapx accuracy and preprocessing vs. signature size (CU1)",
        table,
        notes=(
            f"GESJaccard (exact Jaccard filter, same threshold {THRESHOLD}): "
            f"MAP={results['exact']:.3f}.  Expected shape: accuracy approaches the "
            "exact filter as the signature grows, with diminishing returns beyond "
            "roughly 5 hashes while preprocessing keeps getting slower."
        ),
    )
    # Accuracy with a large signature approaches the exact-filter accuracy.
    assert results[20][0] >= results["exact"] - 0.1
    # Larger signatures never get cheaper to precompute.
    assert results[20][1] >= results[2][1] * 0.8
