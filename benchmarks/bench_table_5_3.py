"""Experiment E2 -- Tables 5.2/5.3/5.4: benchmark dataset generation.

Table 5.2 lists the generator's parameter ranges, Table 5.3 the thirteen
named dataset configurations (CU1-CU8 and F1-F5) and Table 5.4 sample
duplicates produced for the CU1 and CU5 configurations.  This benchmark
regenerates the configuration table, produces sample duplicates and measures
the generation cost of one accuracy-scale dataset.
"""

from __future__ import annotations

from _bench_support import ACCURACY_CLEAN, ACCURACY_SIZE, format_table, record_report

from repro.datagen import make_dataset
from repro.datagen.datasets import DATASET_CONFIGS


def _configuration_table() -> str:
    rows = []
    for name, config in DATASET_CONFIGS.items():
        rows.append(
            [
                name,
                config.error_class,
                f"{config.erroneous_fraction * 100:.0f}%",
                f"{config.edit_extent * 100:.0f}%",
                f"{config.token_swap_rate * 100:.0f}%",
                f"{config.abbreviation_rate * 100:.0f}%",
            ]
        )
    return format_table(
        ["dataset", "class", "erroneous dup.", "edit extent", "token swap", "abbrev."],
        rows,
    )


def _sample_duplicates(name: str, count: int = 5) -> str:
    dataset = make_dataset(name, size=200, num_clean=20, seed=1)
    cluster = dataset.cluster_members(0)
    lines = [f"{name}:"]
    for tid in cluster[:count]:
        record = dataset.records[tid]
        tag = "clean" if record.is_clean else "dirty"
        lines.append(f"  t{tid:<4d} [{tag}] {record.text}")
    return "\n".join(lines)


def test_table_5_3_dataset_configurations(benchmark):
    dataset = benchmark(make_dataset, "CU1", ACCURACY_SIZE, ACCURACY_CLEAN)
    table = _configuration_table()
    samples = "\n\n".join(_sample_duplicates(name) for name in ("CU1", "CU5"))
    record_report(
        "table_5_3",
        "Table 5.3 -- dataset classes (and Table 5.4 sample duplicates)",
        table,
        notes=(
            f"Sample duplicates generated for one cluster (cf. Table 5.4):\n\n{samples}\n\n"
            f"Benchmark: generating the CU1 accuracy dataset at scale "
            f"{ACCURACY_SIZE} tuples / {ACCURACY_CLEAN} clean records."
        ),
    )
    assert len(dataset) == ACCURACY_SIZE
    assert len(DATASET_CONFIGS) == 13
