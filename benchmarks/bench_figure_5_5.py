"""Experiment E11 -- Figure 5.5: effect of IDF pruning on accuracy and time.

Section 5.6 prunes base-relation tokens whose idf falls below
``MIN(idf) + rate * (MAX(idf) - MIN(idf))`` and reports, as the rate grows
from 0 to 0.5:

* (a) MAP stays flat (and *improves* for the unweighted overlap predicates)
  up to a rate of roughly 0.2-0.3, then drops;
* (b) execution time falls substantially because most low-idf tokens are
  dropped from the token tables.
"""

from __future__ import annotations

from repro.obs import perf_clock

from _bench_support import (
    ACCURACY_QUERIES,
    accuracy_dataset,
    format_table,
    record_report,
)

from repro.eval import ExperimentRunner, IdfPruner

RATES = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
PREDICATES = ["jaccard", "intersect", "bm25", "hmm"]


def _run() -> dict:
    dataset = accuracy_dataset("CU1")
    runner = ExperimentRunner(dataset, "CU1")
    tids = runner.query_workload(ACCURACY_QUERIES, seed=2)
    queries = [dataset.strings[tid] for tid in tids]
    results: dict = {}
    for rate in RATES:
        pruner = IdfPruner(rate).fit(dataset.strings)
        for name in PREDICATES:
            predicate = pruner.apply(name, dataset.strings)
            started = perf_clock()
            for query in queries:
                predicate.rank(query)
            elapsed_ms = (perf_clock() - started) * 1000 / len(queries)
            accuracy = runner.evaluate(predicate, num_queries=ACCURACY_QUERIES, seed=2)
            results[(rate, name)] = (accuracy.mean_average_precision, elapsed_ms)
        results[("retained", rate)] = pruner.retained_fraction
    return results


def test_figure_5_5_pruning(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for rate in RATES:
        row = [f"{rate:.1f}", f"{results[('retained', rate)] * 100:.0f}%"]
        for name in PREDICATES:
            accuracy, elapsed = results[(rate, name)]
            row.append(f"{accuracy:.3f} / {elapsed:.1f}ms")
        rows.append(row)
    table = format_table(
        ["rate", "tokens kept"] + [f"{name} (MAP / query)" for name in PREDICATES],
        rows,
    )
    record_report(
        "figure_5_5",
        "Figure 5.5 -- MAP and query time vs. IDF pruning rate (dirty dataset CU1)",
        table,
        notes=(
            "Expected shape: moderate pruning (rate 0.2-0.3) keeps MAP within a few "
            "points (and helps the unweighted predicates) while query time drops; "
            "aggressive pruning eventually hurts accuracy."
        ),
    )

    # Moderate pruning does not destroy accuracy for the weighted predicates.
    for name in ("bm25", "hmm"):
        base_map = results[(0.0, name)][0]
        pruned_map = results[(0.2, name)][0]
        assert pruned_map >= base_map - 0.1, name
    # Pruning shrinks the token table monotonically.
    retained = [results[("retained", rate)] for rate in RATES]
    assert all(later <= earlier + 1e-9 for earlier, later in zip(retained, retained[1:]))
