"""Sharded-execution benchmark -- exactness guard + multi-core speedup.

Partitions the 10k-row UIS company-names relation into shards, broadcasts
the globally computed collection statistics into every shard-local fit, and
runs the weighted-predicate workload (``run_many`` of pruned ``top_k(k=10)``
queries) three ways:

* unsharded (the PR-3/PR-4 single-threaded fast path -- the baseline),
* sharded with the **serial** executor (isolates partition/merge overhead),
* sharded with the **process** executor (the multi-core configuration).

Every sharded run must return **bit-identical** ``(tid, score)`` lists to
the unsharded engine -- the benchmark fails otherwise, which is the cheap CI
guard against silently losing exactness.  The speedup of the process
executor is reported per predicate plus as the workload geometric mean; it
is hardware-bound (``min(num_shards, cores)`` ways of parallelism), so the
report records ``cpu_count`` alongside, and ``--require-speedup`` gates only
when the machine can physically deliver it.

Writes ``BENCH_sharded.json`` to the repository root.

Standalone usage (CI runs the smoke variant)::

    PYTHONPATH=src python benchmarks/bench_sharded.py          # full
    PYTHONPATH=src python benchmarks/bench_sharded.py --smoke  # tiny
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for _path in (str(_SRC), str(_HERE)):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.datagen import make_dataset  # noqa: E402
from repro.engine import SimilarityEngine  # noqa: E402
from repro.obs import bench_envelope, perf_clock  # noqa: E402

#: The weighted predicates: collection-statistics-dependent scoring, i.e.
#: the predicates naive partitioning would get wrong.
PREDICATES = ["bm25", "cosine", "weighted_match"]
TOP_K = 10
NUM_SHARDS = 4


def _pairs(batches):
    return [[(m.tid, m.score) for m in batch] for batch in batches]


def _timed_run_many(query, texts, k):
    started = perf_clock()
    batches = query.run_many(texts, op="top_k", k=k)
    return batches, perf_clock() - started


def bench_predicate(engine, name, strings, queries, num_shards) -> dict:
    baseline = engine.from_strings(strings).predicate(name)
    serial = baseline.shards(num_shards, executor="serial")
    process = baseline.shards(num_shards, executor="process", max_workers=num_shards)

    # Fit outside the timed region (the workload amortizes preprocessing).
    started = perf_clock()
    baseline.fitted_predicate()
    baseline_fit_seconds = perf_clock() - started
    started = perf_clock()
    process.fitted_predicate()
    sharded_fit_seconds = perf_clock() - started
    serial.fitted_predicate()

    expected, baseline_seconds = _timed_run_many(baseline, queries, TOP_K)
    serial_out, serial_seconds = _timed_run_many(serial, queries, TOP_K)
    process_out, process_seconds = _timed_run_many(process, queries, TOP_K)

    # Single-query acceptance check: sharded ProcessPool top_k(k=10) must be
    # bit-identical to the unsharded engine, query by query.
    single_identical = all(
        [(m.tid, m.score) for m in process.top_k(text, TOP_K)]
        == [(m.tid, m.score) for m in baseline.top_k(text, TOP_K)]
        for text in queries[: min(10, len(queries))]
    )

    return {
        "predicate": name,
        "top_k": TOP_K,
        "num_shards": num_shards,
        "baseline_fit_seconds": baseline_fit_seconds,
        "sharded_fit_seconds": sharded_fit_seconds,
        "baseline_seconds": baseline_seconds,
        "serial_seconds": serial_seconds,
        "process_seconds": process_seconds,
        "baseline_qps": len(queries) / baseline_seconds if baseline_seconds else None,
        "process_qps": len(queries) / process_seconds if process_seconds else None,
        "serial_speedup": (
            baseline_seconds / serial_seconds if serial_seconds else None
        ),
        "process_speedup": (
            baseline_seconds / process_seconds if process_seconds else None
        ),
        "identical_serial": _pairs(serial_out) == _pairs(expected),
        "identical_process": _pairs(process_out) == _pairs(expected),
        "identical_single_query_process": single_identical,
    }


def run(size: int, num_queries: int, num_shards: int = NUM_SHARDS, seed: int = 42) -> dict:
    dataset = make_dataset("CU1", size=size, num_clean=max(50, size // 10), seed=seed)
    strings = dataset.strings
    step = max(1, len(strings) // num_queries)
    queries = strings[::step][:num_queries]
    engine = SimilarityEngine()
    try:
        results = [
            bench_predicate(engine, name, strings, queries, num_shards)
            for name in PREDICATES
        ]
    finally:
        engine.clear_cache()  # shuts down the process pools
    speedups = [entry["process_speedup"] for entry in results if entry["process_speedup"]]
    geomean = (
        math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        if speedups
        else None
    )
    cores = os.cpu_count() or 1
    extra = {}
    if cores < 2:
        # Parallel speedup is hardware-bound; record in the report itself
        # why the recorded numbers cannot show it (the --require-speedup
        # gate self-skips for the same reason).
        extra["hardware_note"] = (
            f"measured on {cores} CPU(s): executor parallelism cannot exceed "
            "1x here, so speedup columns reflect overhead only; re-run on a "
            "multi-core machine for representative numbers"
        )
    return bench_envelope(
        benchmark="sharded",
        relation={"generator": "UIS company names (CU1)", "size": len(strings)},
        config={
            "top_k": TOP_K,
            "num_shards": num_shards,
            "num_queries": len(queries),
            "seed": seed,
            "cpu_count": cores,
        },
        results=results,
        process_speedup_geomean=geomean,
        **extra,
    )


def check(report: dict, require_speedup: float = 0.0) -> list:
    """Guard conditions; returns a list of human-readable failures."""
    failures = []
    for entry in report["results"]:
        name = entry["predicate"]
        for key in (
            "identical_serial",
            "identical_process",
            "identical_single_query_process",
        ):
            if not entry[key]:
                failures.append(f"{name}: sharded results diverged ({key})")
    if require_speedup:
        cores = report["config"]["cpu_count"] or 1
        if cores < 2:
            print(
                f"note: --require-speedup skipped, only {cores} CPU(s) available "
                "(parallel speedup is hardware-bound)",
                file=sys.stderr,
            )
        else:
            geomean = report["process_speedup_geomean"] or 0.0
            if geomean < require_speedup:
                failures.append(
                    f"process-executor geomean speedup {geomean:.2f}x "
                    f"< required {require_speedup}x"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus, exactness guard only (CI perf-smoke job)",
    )
    parser.add_argument("--size", type=int, default=None, help="relation size")
    parser.add_argument("--queries", type=int, default=None, help="number of queries")
    parser.add_argument(
        "--shards", type=int, default=NUM_SHARDS, help="shard count (default 4)"
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=0.0,
        help="fail unless the process-executor geomean speedup reaches this "
        "factor (skipped on single-core machines)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=_HERE.parent / "BENCH_sharded.json",
        help="output JSON path (default: repo root BENCH_sharded.json)",
    )
    args = parser.parse_args(argv)

    size = args.size or (500 if args.smoke else 10_000)
    num_queries = args.queries or (8 if args.smoke else 40)
    report = run(size=size, num_queries=num_queries, num_shards=args.shards)
    report["smoke"] = bool(args.smoke)

    failures = check(report, require_speedup=args.require_speedup)
    report["failures"] = failures

    for entry in report["results"]:
        print(
            f"{entry['predicate']:>15}  top_k(k={entry['top_k']}) x"
            f"{report['config']['num_queries']} queries, "
            f"{entry['num_shards']} shards: serial {entry['serial_speedup']:.2f}x, "
            f"process {entry['process_speedup']:.2f}x "
            f"({entry['baseline_qps']:.0f} -> {entry['process_qps']:.0f} q/s)  "
            f"identical={entry['identical_process']}"
        )
    if report["process_speedup_geomean"]:
        print(
            f"{'geomean':>15}  process executor {report['process_speedup_geomean']:.2f}x "
            f"on {report['config']['cpu_count']} CPU(s)"
        )

    if not args.smoke:
        args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("sharded execution exact across executors")
    return 0


def test_sharded(benchmark):
    """Pytest harness entry: small-scale run with the exactness guards."""
    report = benchmark.pedantic(
        lambda: run(size=1200, num_queries=10), rounds=1, iterations=1
    )
    failures = check(report)
    assert not failures, failures
    from _bench_support import format_table, record_report

    rows = [
        [
            entry["predicate"],
            f"{entry['serial_speedup']:.2f}x",
            f"{entry['process_speedup']:.2f}x",
            str(entry["identical_process"]),
        ]
        for entry in report["results"]
    ]
    record_report(
        "sharded",
        f"Sharded execution -- {report['relation']['size']} tuples, "
        f"{report['config']['num_shards']} shards, k={TOP_K}, "
        f"{report['config']['cpu_count']} CPU(s)",
        format_table(
            ["predicate", "serial speedup", "process speedup", "identical"], rows
        ),
        notes=(
            "Sharded runs must be bit-identical to the unsharded engine; the "
            "process-executor speedup is bounded by min(shards, cores)."
        ),
    )


if __name__ == "__main__":
    raise SystemExit(main())
