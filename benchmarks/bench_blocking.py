"""Blocking benchmark -- candidate-pruning speedup and recall vs. the baseline.

Measures the :mod:`repro.blocking` subsystem on a similarity self-join of a
generated company-names dataset (5000 records, ground-truth duplicates):

* **baseline** -- the seed behaviour: every tuple sharing any q-gram with the
  probe is scored;
* **length / prefix / length+prefix** -- the exact filters, which must return
  a byte-identical match set while scoring far fewer candidate pairs;
* **lsh** -- MinHash-LSH banding, which trades a bounded amount of recall for
  orders-of-magnitude fewer scored pairs.

Acceptance criteria asserted below: the LSH-blocked self-join examines at
least 5x fewer candidate pairs than the unblocked baseline with pairwise
recall >= 0.95 at the benchmark threshold, and the exact filters reproduce
the baseline match set exactly.
"""

from __future__ import annotations

from repro.obs import perf_clock

from _bench_support import format_table, record_report

from repro.datagen import make_dataset
from repro.engine import SimilarityEngine

SIZE = 5000
THRESHOLD = 0.6
PREDICATE = "jaccard"
LSH_BANDS = 24
LSH_ROWS = 4

#: Blocker specs measured against the unblocked baseline.
BLOCKERS = ["length", "prefix", "length+prefix", "lsh"]


def _self_join(strings, spec):
    """One blocked self-join through the unified engine's query API."""
    query = SimilarityEngine().from_strings(strings).predicate(PREDICATE)
    if spec is not None:
        query = query.blocker(spec, lsh_bands=LSH_BANDS, lsh_rows=LSH_ROWS)
    query.fitted_predicate(THRESHOLD)  # preprocessing outside the timed join
    started = perf_clock()
    matches = query.self_join(THRESHOLD)
    elapsed = perf_clock() - started
    return matches, query.last_self_join_stats, elapsed


def _run() -> dict:
    dataset = make_dataset("CU1", size=SIZE, num_clean=SIZE // 10, seed=42)
    strings = dataset.strings
    results: dict = {}
    baseline_matches, baseline_stats, baseline_seconds = _self_join(strings, None)
    baseline_pairs = {(m.left_id, m.right_id) for m in baseline_matches}
    results["baseline"] = {
        "matches": baseline_matches,
        "pairs": baseline_pairs,
        "examined": baseline_stats.pairs_examined,
        "skipped": baseline_stats.probes_skipped,
        "seconds": baseline_seconds,
        "recall": 1.0,
        "identical": True,
    }
    for spec in BLOCKERS:
        matches, stats, seconds = _self_join(strings, spec)
        pairs = {(m.left_id, m.right_id) for m in matches}
        results[spec] = {
            "matches": matches,
            "pairs": pairs,
            "examined": stats.pairs_examined,
            "skipped": stats.probes_skipped,
            "seconds": seconds,
            "recall": len(pairs & baseline_pairs) / max(1, len(baseline_pairs)),
            "identical": matches == baseline_matches,
        }
    return results


def test_blocking_speedup_and_recall(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    baseline = results["baseline"]

    # -- acceptance criteria ------------------------------------------------
    for spec in ("length", "prefix", "length+prefix"):
        assert results[spec]["identical"], f"{spec} must match the baseline exactly"
        assert results[spec]["examined"] < baseline["examined"]
    lsh = results["lsh"]
    assert baseline["examined"] >= 5 * lsh["examined"], (
        f"LSH must examine >= 5x fewer candidate pairs "
        f"({baseline['examined']} vs {lsh['examined']})"
    )
    assert lsh["recall"] >= 0.95, f"LSH pairwise recall {lsh['recall']:.4f} < 0.95"

    rows = []
    for spec in ["baseline"] + BLOCKERS:
        result = results[spec]
        reduction = baseline["examined"] / max(1, result["examined"])
        rows.append(
            [
                spec,
                f"{result['examined']:,}",
                f"{reduction:.1f}x",
                f"{len(result['matches']):,}",
                f"{result['recall']:.4f}",
                "yes" if result["identical"] else "no",
                f"{result['skipped']:,}",
                f"{result['seconds']:.1f}",
            ]
        )
    table = format_table(
        [
            "blocker",
            "pairs examined",
            "reduction",
            "matches",
            "recall",
            "identical",
            "probes skipped",
            "join (s)",
        ],
        rows,
    )
    record_report(
        "blocking",
        f"Blocking subsystem -- {PREDICATE} self-join, {SIZE} tuples, "
        f"threshold {THRESHOLD} (LSH {LSH_BANDS}x{LSH_ROWS})",
        table,
        notes=(
            "Exact filters (length/prefix) must be byte-identical to the "
            "baseline; LSH trades recall (>= 0.95 required) for the largest "
            "candidate reduction (>= 5x required).  'pairs examined' counts "
            "(probe, candidate) pairs actually scored; the unblocked baseline "
            "scores both orientations of each pair while blocked runs score "
            "each unordered pair once, so up to 2x of a reduction comes from "
            "orientation pruning rather than blocking proper."
        ),
    )
