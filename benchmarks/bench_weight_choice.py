"""Experiment E13 (ablation) -- section 5.3.1: RS weights vs. idf weights.

The paper chooses Robertson-Sparck Jones weights over plain idf for the
weighted overlap predicates (WeightedMatch, WeightedJaccard) because they
lead to better accuracy, and later attributes the weighted-overlap advantage
over tf-idf cosine to the same weighting scheme.  This ablation compares the
two weighting schemes for both predicates on a dirty dataset.
"""

from __future__ import annotations

from _bench_support import ACCURACY_QUERIES, accuracy_dataset, format_table, record_report

from repro.core.predicates import WeightedJaccard, WeightedMatch
from repro.eval import ExperimentRunner

PREDICATES = {
    "WeightedMatch": WeightedMatch,
    "WeightedJaccard": WeightedJaccard,
}
SCHEMES = ["rs", "idf"]


def _run() -> dict:
    dataset = accuracy_dataset("CU1")
    runner = ExperimentRunner(dataset, "CU1")
    results: dict = {}
    for label, cls in PREDICATES.items():
        for scheme in SCHEMES:
            accuracy = runner.evaluate(cls(weighting=scheme), num_queries=ACCURACY_QUERIES)
            results[(label, scheme)] = accuracy.mean_average_precision
    return results


def test_weight_choice_rs_vs_idf(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [label, f"{results[(label, 'rs')]:.3f}", f"{results[(label, 'idf')]:.3f}"]
        for label in PREDICATES
    ]
    table = format_table(["predicate", "RS weights (MAP)", "idf weights (MAP)"], rows)
    record_report(
        "weight_choice",
        "Section 5.3.1 -- weighting-scheme ablation for the weighted overlap predicates (CU1)",
        table,
        notes=(
            "Expected shape: RS weights are at least as accurate as plain idf "
            "weights for both predicates (the paper's reason for adopting them)."
        ),
    )
    for label in PREDICATES:
        assert results[(label, "rs")] >= results[(label, "idf")] - 0.03, label
