"""Shared helpers for the benchmark harness.

Provides dataset caching (so several benchmarks can reuse one generated
dataset), simple fixed-width table formatting, result persistence and the
small/full scale switch.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.datagen import make_dataset
from repro.datagen.datasets import scalability_config
from repro.datagen.generator import DatasetGenerator, GeneratedDataset
from repro.datagen.sources import dblp_titles
from repro.obs import bench_envelope, write_json

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: (title, formatted table) pairs collected during the run and printed in the
#: terminal summary by conftest.pytest_terminal_summary.
REPORTS: List[Tuple[str, str]] = []

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small").lower() == "full"

# Scaled-down defaults (small) vs. the paper's sizes (full).
ACCURACY_SIZE = 5000 if FULL_SCALE else 600
ACCURACY_CLEAN = 500 if FULL_SCALE else 100
ACCURACY_QUERIES = 500 if FULL_SCALE else 30
PERFORMANCE_SIZE = 10_000 if FULL_SCALE else 1500
PERFORMANCE_QUERIES = 100 if FULL_SCALE else 25
SCALABILITY_SIZES = [10_000, 25_000, 50_000, 100_000] if FULL_SCALE else [500, 1000, 2000, 4000]

#: Query-time / preprocessing benchmarks cover every predicate class; the
#: combination predicates are the slowest, exactly as in the paper.
ALL_PREDICATES = [
    "intersect",
    "jaccard",
    "weighted_match",
    "weighted_jaccard",
    "cosine",
    "bm25",
    "lm",
    "hmm",
    "edit_distance",
    "ges",
    "ges_jaccard",
    "ges_apx",
    "soft_tfidf",
]

#: Pretty names used in the report tables (matching the paper's labels).
DISPLAY_NAMES = {
    "intersect": "IntersectSize",
    "jaccard": "Jaccard",
    "weighted_match": "WeightedMatch",
    "weighted_jaccard": "WeightedJaccard",
    "cosine": "Cosine (tf-idf)",
    "bm25": "BM25",
    "lm": "LM",
    "hmm": "HMM",
    "edit_distance": "EditDistance",
    "ges": "GES",
    "ges_jaccard": "GESJaccard",
    "ges_apx": "GESapx",
    "soft_tfidf": "SoftTFIDF w/JW",
}


@lru_cache(maxsize=None)
def accuracy_dataset(name: str, seed: int = 42) -> GeneratedDataset:
    """A (cached) accuracy dataset from Table 5.3, at the configured scale."""
    return make_dataset(name, size=ACCURACY_SIZE, num_clean=ACCURACY_CLEAN, seed=seed)


@lru_cache(maxsize=None)
def performance_dataset(size: int, seed: int = 42) -> GeneratedDataset:
    """A (cached) DBLP-titles performance dataset (section 5.5 configuration)."""
    source = dblp_titles(count=max(2000, size // 4), seed=11)
    generator = DatasetGenerator(source)
    return generator.generate(scalability_config(size, seed=seed))


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table (first column left-aligned, rest right-aligned)."""
    materialized = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    header_line = "  ".join(
        header.ljust(widths[i]) if i == 0 else header.rjust(widths[i])
        for i, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append(
            "  ".join(
                value.ljust(widths[i]) if i == 0 else value.rjust(widths[i])
                for i, value in enumerate(row)
            )
        )
    return "\n".join(lines)


def record_report(experiment: str, title: str, table: str, notes: str = "") -> None:
    """Register a report for the terminal summary and persist it to disk."""
    text = table if not notes else f"{table}\n\n{notes}"
    REPORTS.append((f"{experiment}: {title}", text))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(f"{title}\n\n{text}\n", encoding="utf-8")


def record_json(
    experiment: str,
    relation: str,
    config: Dict[str, object],
    results: Sequence[Dict[str, object]],
) -> Path:
    """Persist machine-readable results next to the text report.

    Every benchmark that emits timings writes the same ``repro.obs/1`` bench
    envelope (see :func:`repro.obs.bench_envelope`), so downstream tooling can
    consume ``benchmarks/results/*.json`` without per-benchmark parsers.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.json"
    write_json(
        path,
        bench_envelope(
            benchmark=experiment,
            relation=relation,
            config=dict(config),
            results=[dict(row) for row in results],
        ),
    )
    return path
