"""Experiment E12 -- Figure 5.6: IDF distribution of the q-gram vocabulary.

Figure 5.6 shows the histogram of idf weights for the q-grams of the CU1
dataset: a very large number of tokens have low idf (they are frequent,
stopword-like q-grams), which is why idf-threshold pruning removes a large
fraction of the token table at little accuracy cost.

Expected shape: the histogram is heavily skewed -- the low-idf half of the
range contains far more tokens than the high-idf half... inverted relative to
token *rarity*: most distinct q-grams are rare (high idf), but the mass of
the postings (occurrences) sits in the low-idf bins.  We therefore report
both views: distinct tokens per idf bin and total occurrences per idf bin.
"""

from __future__ import annotations

import math
from collections import Counter

from _bench_support import accuracy_dataset, format_table, record_report

from repro.text.tokenize import QgramTokenizer

NUM_BINS = 10


def _run() -> dict:
    dataset = accuracy_dataset("CU1")
    tokenizer = QgramTokenizer(q=2)
    token_lists = [tokenizer.tokenize(text) for text in dataset.strings]
    document_frequency: Counter = Counter()
    occurrence_count: Counter = Counter()
    for tokens in token_lists:
        document_frequency.update(set(tokens))
        occurrence_count.update(tokens)
    total = len(token_lists)
    idf = {
        token: math.log(total) - math.log(df) for token, df in document_frequency.items()
    }
    lowest, highest = min(idf.values()), max(idf.values())
    width = (highest - lowest) / NUM_BINS or 1.0
    distinct_bins = [0] * NUM_BINS
    occurrence_bins = [0] * NUM_BINS
    for token, value in idf.items():
        index = min(int((value - lowest) / width), NUM_BINS - 1)
        distinct_bins[index] += 1
        occurrence_bins[index] += occurrence_count[token]
    return {
        "lowest": lowest,
        "highest": highest,
        "distinct": distinct_bins,
        "occurrences": occurrence_bins,
    }


def test_figure_5_6_idf_distribution(benchmark):
    result = benchmark(_run)
    width = (result["highest"] - result["lowest"]) / NUM_BINS
    rows = []
    for index in range(NUM_BINS):
        low = result["lowest"] + index * width
        high = low + width
        rows.append(
            [
                f"[{low:.2f}, {high:.2f})",
                result["distinct"][index],
                result["occurrences"][index],
            ]
        )
    table = format_table(["idf bin", "distinct q-grams", "q-gram occurrences"], rows)
    low_half_occurrences = sum(result["occurrences"][: NUM_BINS // 2])
    high_half_occurrences = sum(result["occurrences"][NUM_BINS // 2 :])
    record_report(
        "figure_5_6",
        "Figure 5.6 -- IDF distribution of q-grams (dirty dataset CU1)",
        table,
        notes=(
            "Expected shape: the bulk of q-gram *occurrences* falls in the low-idf "
            "bins, so pruning by an idf threshold removes a large share of the "
            f"token table.  Low-idf half: {low_half_occurrences} occurrences, "
            f"high-idf half: {high_half_occurrences}."
        ),
    )
    assert low_half_occurrences > high_half_occurrences
