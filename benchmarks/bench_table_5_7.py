"""Experiment E6 -- Table 5.7: GES filter thresholds vs. accuracy.

GESJaccard and GESapx prune candidate tuples whose over-estimated similarity
(q-gram Jaccard / min-hash filter, equations 4.7-4.8) falls below a threshold
θ before computing the exact GES score.  Raising θ prunes more aggressively
and eventually drops relevant tuples.  Paper values on CU1 (GES without a
threshold scores 0.697 there):

    predicate     θ=0.7   θ=0.8   θ=0.9
    GESJaccard    0.692   0.683   0.603
    GESapx        0.678   0.665   0.608
"""

from __future__ import annotations

from _bench_support import ACCURACY_QUERIES, accuracy_dataset, format_table, record_report

from repro.core.predicates import GES, GESApx, GESJaccard
from repro.eval import ExperimentRunner

THRESHOLDS = [0.7, 0.8, 0.9]


def _run() -> dict:
    dataset = accuracy_dataset("CU1")
    runner = ExperimentRunner(dataset, "CU1")
    results: dict = {}
    results["ges"] = runner.evaluate(
        GES(), num_queries=ACCURACY_QUERIES
    ).mean_average_precision
    for threshold in THRESHOLDS:
        results[("ges_jaccard", threshold)] = runner.evaluate(
            GESJaccard(threshold=threshold), num_queries=ACCURACY_QUERIES
        ).mean_average_precision
        results[("ges_apx", threshold)] = runner.evaluate(
            GESApx(threshold=threshold, num_hashes=5), num_queries=ACCURACY_QUERIES
        ).mean_average_precision
    return results


def test_table_5_7_ges_thresholds(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name, label in (("ges_jaccard", "GESJaccard"), ("ges_apx", "GESapx")):
        rows.append(
            [label] + [f"{results[(name, threshold)]:.3f}" for threshold in THRESHOLDS]
        )
    table = format_table(
        ["predicate", "theta=0.7", "theta=0.8", "theta=0.9"], rows
    )
    record_report(
        "table_5_7",
        "Table 5.7 -- accuracy of the GES filter predicates for different thresholds (CU1)",
        table,
        notes=(
            f"Unfiltered GES on the same dataset: MAP={results['ges']:.3f} "
            "(the paper reports 0.697).  Expected shape: accuracy is close to "
            "unfiltered GES at theta=0.7 and drops as theta grows; GESapx trails "
            "GESJaccard slightly."
        ),
    )

    # Accuracy must not increase as the threshold gets stricter.
    assert results[("ges_jaccard", 0.7)] >= results[("ges_jaccard", 0.9)] - 0.02
    assert results[("ges_apx", 0.7)] >= results[("ges_apx", 0.9)] - 0.02
    # The loose filter should be close to unfiltered GES.
    assert results[("ges_jaccard", 0.7)] >= results["ges"] - 0.15
