"""Experiment E4 -- Table 5.5: accuracy under abbreviation and token-swap errors.

The paper evaluates every predicate on two single-error-type datasets:

* F1 -- only abbreviation errors.  The unweighted overlap predicates and
  edit distance lose accuracy; all weighted predicates are (near) perfect.
* F2 -- only token swap errors.  Edit distance and GES lose accuracy; all
  token-based predicates are perfect.

Paper values (MAP):

    error          Xect  Jac.  WM   WJ   Cosine/BM25/LM/HMM  ED    GES   STfIdf
    abbrev. (F1)   0.94  0.96  0.98 1.0  1.0                 0.89  1.0   1.0
    token swap(F2) 1.0   1.0   1.0  1.0  1.0                 0.77  0.94  1.0
"""

from __future__ import annotations

from _bench_support import (
    ACCURACY_QUERIES,
    ALL_PREDICATES,
    DISPLAY_NAMES,
    accuracy_dataset,
    format_table,
    record_report,
)

from repro.eval import ExperimentRunner

PREDICATES = [name for name in ALL_PREDICATES if name not in ("ges_jaccard", "ges_apx")]


def _run() -> dict:
    results: dict = {}
    for dataset_name in ("F1", "F2"):
        dataset = accuracy_dataset(dataset_name)
        runner = ExperimentRunner(dataset, dataset_name)
        for predicate in PREDICATES:
            accuracy = runner.evaluate(predicate, num_queries=ACCURACY_QUERIES)
            results[(dataset_name, predicate)] = accuracy.mean_average_precision
    return results


def test_table_5_5_abbreviation_and_token_swap_errors(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for dataset_name, label in (("F1", "abbrev. error (F1)"), ("F2", "token swap (F2)")):
        rows.append(
            [label]
            + [f"{results[(dataset_name, predicate)]:.2f}" for predicate in PREDICATES]
        )
    table = format_table(
        ["error type"] + [DISPLAY_NAMES[predicate] for predicate in PREDICATES], rows
    )
    record_report(
        "table_5_5",
        "Table 5.5 -- accuracy (MAP) under abbreviation-only and token-swap-only errors",
        table,
        notes=(
            "Expected shape: weighted q-gram predicates stay near 1.0 on both error "
            "types; edit distance is the weakest on both; GES handles abbreviations "
            "but drops on token swaps."
        ),
    )

    # Weighted predicates must beat edit distance on the abbreviation dataset.
    assert results[("F1", "bm25")] >= results[("F1", "edit_distance")]
    # Token-based predicates must beat edit distance on the token-swap dataset.
    assert results[("F2", "bm25")] >= results[("F2", "edit_distance")]
    # GES loses more accuracy on token swaps than BM25 does.
    assert results[("F2", "bm25")] >= results[("F2", "ges")]
