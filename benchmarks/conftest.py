"""Pytest configuration for the benchmark harness.

Each benchmark module reproduces one table or figure of the paper's
evaluation (chapter 5).  Results are printed at the end of the run and also
written to ``benchmarks/results/<experiment>.txt`` so they can be inspected
without re-running.

Scale knobs (environment variables):

``REPRO_BENCH_SCALE``
    ``small`` (default) runs laptop-scale datasets in a few minutes;
    ``full`` uses the paper's original sizes (5000-tuple accuracy datasets,
    10k-100k performance datasets) and can take hours.
"""

from __future__ import annotations

import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_SRC), str(_HERE)):
    if path not in sys.path:
        sys.path.insert(0, path)

import pytest  # noqa: E402

from _bench_support import REPORTS  # noqa: E402


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every experiment report collected during the run."""
    if not REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for title, text in REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
