"""Experiment E7 -- Figure 5.1: MAP of every predicate per error class.

Figure 5.1 plots MAP for all predicates on the low-, medium- and dirty-error
dataset classes of Table 5.3.  Expected shape (section 5.4.1):

* on low-error data nearly everything does well except edit distance, GES
  and the unweighted overlap predicates;
* as the error level grows, BM25, HMM, LM and SoftTFIDF/JW stay on top,
  weighted overlap (RS weights) beats plain tf-idf cosine, and the edit-based
  predicates degrade the most.

At the default (small) scale one representative dataset per class is used;
set ``REPRO_BENCH_SCALE=full`` to evaluate every CU dataset like the paper.
"""

from __future__ import annotations

from _bench_support import (
    ACCURACY_QUERIES,
    ALL_PREDICATES,
    DISPLAY_NAMES,
    FULL_SCALE,
    accuracy_dataset,
    format_table,
    record_report,
)

from repro.datagen.datasets import ACCURACY_CLASSES
from repro.eval import ExperimentRunner

PREDICATES = [name for name in ALL_PREDICATES if name not in ("ges_jaccard", "ges_apx")]

CLASS_DATASETS = (
    ACCURACY_CLASSES
    if FULL_SCALE
    else {"low": ["CU8"], "medium": ["CU5"], "dirty": ["CU1"]}
)


def _run() -> dict:
    results: dict = {}
    for error_class, dataset_names in CLASS_DATASETS.items():
        for predicate in PREDICATES:
            values = []
            for dataset_name in dataset_names:
                dataset = accuracy_dataset(dataset_name)
                runner = ExperimentRunner(dataset, dataset_name)
                accuracy = runner.evaluate(predicate, num_queries=ACCURACY_QUERIES)
                values.append(accuracy.mean_average_precision)
            results[(error_class, predicate)] = sum(values) / len(values)
    return results


def test_figure_5_1_map_by_error_class(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    classes = ["low", "medium", "dirty"]
    rows = [
        [DISPLAY_NAMES[predicate]]
        + [f"{results[(error_class, predicate)]:.3f}" for error_class in classes]
        for predicate in PREDICATES
    ]
    table = format_table(["predicate", "low", "medium", "dirty"], rows)
    record_report(
        "figure_5_1",
        "Figure 5.1 -- MAP per predicate on the low / medium / dirty dataset classes",
        table,
        notes=(
            "Expected shape: BM25 / HMM / LM (and SoftTFIDF w/JW) lead on every class; "
            "unweighted overlap and edit-based predicates trail, increasingly so on "
            "the dirty class."
        ),
    )

    for error_class in classes:
        best_probabilistic = max(
            results[(error_class, name)] for name in ("bm25", "hmm", "lm")
        )
        assert best_probabilistic >= results[(error_class, "intersect")] - 0.02
        assert best_probabilistic >= results[(error_class, "edit_distance")] - 0.02
    # Accuracy on dirty data is no better than on low-error data.
    for predicate in PREDICATES:
        assert results[("dirty", predicate)] <= results[("low", predicate)] + 0.05
