"""Serving-layer benchmark -- bit-identity guard + concurrent load profile.

Boots the full serving stack (asyncio HTTP server, admission control,
micro-batcher, per-corpus engines) in-process, then measures it two ways:

* **Identity guard** -- for *every* registered predicate (all 13), a
  ``top_k`` answered through the server must be bit-identical (tids, float
  scores, strings, order) to a direct :class:`SimilarityEngine` call.  This
  is what CI's ``--smoke`` mode asserts: the serving layer may change *when*
  work runs (queueing, coalescing, worker threads), never *what* it
  computes.
* **Load profile** -- ``--clients`` worker threads (>= 8 by default) drive
  open-loop traffic (each thread sends on a fixed arrival schedule and does
  not slow its schedule down when responses lag) against one corpus, with
  the micro-batcher off (``window=0``) and on, reporting p50/p99 latency,
  achieved QPS, rejection counts and the server-side batch-size
  distribution.

Writes ``BENCH_serving.json`` to the repository root.

Standalone usage (CI runs the smoke variant)::

    PYTHONPATH=src python benchmarks/bench_serving.py          # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke  # tiny
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import threading
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for _path in (str(_SRC), str(_HERE)):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.datagen import make_dataset  # noqa: E402
from repro.engine import SimilarityEngine  # noqa: E402
from repro.obs import bench_envelope, perf_clock  # noqa: E402
from repro.serve import ServeClient, ServeError, ServeServer, SimilarityService  # noqa: E402

TOP_K = 10


class _ServerThread:
    """The serving stack on a private event loop in a daemon thread."""

    def __init__(self, service: SimilarityService):
        self.service = service
        self.host = ""
        self.port = 0
        self._loop = None
        self._server = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("serve benchmark: server failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._server is not None:
            self._loop.call_soon_threadsafe(self._server.request_stop)
        self._thread.join(timeout=60)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = ServeServer(self.service, port=0)
        self.host, self.port = await self._server.start()
        self._ready.set()
        await self._server.serve_until_stopped()


def _quantile(sorted_values, q: float) -> float:
    """Nearest-rank quantile of an already-sorted list (0 on empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values)) - 1))
    return sorted_values[index]


def check_identity(server: _ServerThread, corpus_id: str, strings, queries) -> list:
    """Served-vs-direct bit-identity over every registered predicate."""
    engine = SimilarityEngine()
    client = ServeClient(server.host, server.port)
    mismatches = []
    try:
        for predicate in SimilarityEngine.available_predicates():
            for text in queries:
                served = client.top_k(corpus_id, text, k=TOP_K, predicate=predicate)
                direct = (
                    engine.from_strings(strings)
                    .predicate(predicate)
                    .top_k(text, TOP_K)
                )
                if served != direct:
                    mismatches.append(f"{predicate}: served != direct for {text!r}")
                    break
    finally:
        client.close()
        engine.clear_cache()
    return mismatches


def run_load(
    server: _ServerThread,
    corpus_id: str,
    queries,
    num_clients: int,
    requests_per_client: int,
    target_qps_per_client: float,
) -> dict:
    """Open-loop load: each client thread sends on a fixed arrival schedule."""
    interval = 1.0 / target_qps_per_client if target_qps_per_client else 0.0
    latencies: list = []
    ok = rejected = timed_out = failed = 0
    lock = threading.Lock()
    start_barrier = threading.Barrier(num_clients + 1)

    def client_worker(worker_id: int) -> None:
        nonlocal ok, rejected, timed_out, failed
        client = ServeClient(server.host, server.port)
        local_latencies = []
        local_ok = local_rejected = local_timed_out = local_failed = 0
        start_barrier.wait(timeout=60)
        schedule_start = perf_clock()
        for index in range(requests_per_client):
            # Open loop: wait only until the scheduled arrival time; if the
            # previous response came back late, fire immediately.
            due = schedule_start + index * interval
            delay = due - perf_clock()
            if delay > 0:
                threading.Event().wait(delay)
            text = queries[(worker_id + index) % len(queries)]
            started = perf_clock()
            try:
                client.top_k(corpus_id, text, k=TOP_K)
                local_latencies.append(perf_clock() - started)
                local_ok += 1
            except ServeError as error:
                if error.status == 429:
                    local_rejected += 1
                elif error.status == 504:
                    local_timed_out += 1
                else:
                    local_failed += 1
            except Exception:
                local_failed += 1
        client.close()
        with lock:
            latencies.extend(local_latencies)
            ok += local_ok
            rejected += local_rejected
            timed_out += local_timed_out
            failed += local_failed

    threads = [
        threading.Thread(target=client_worker, args=(i,)) for i in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait(timeout=60)
    wall_started = perf_clock()
    for thread in threads:
        thread.join(timeout=600)
    wall_seconds = perf_clock() - wall_started
    latencies.sort()
    metrics = server.service.obs.metrics
    batches = metrics.value("serve.batches_total")
    batched_queries = metrics.value("serve.batched_queries_total")
    return {
        "num_clients": num_clients,
        "requests_per_client": requests_per_client,
        "requests_total": num_clients * requests_per_client,
        "ok": ok,
        "rejected_429": rejected,
        "timed_out_504": timed_out,
        "failed": failed,
        "wall_seconds": wall_seconds,
        "qps": ok / wall_seconds if wall_seconds else 0.0,
        "p50_ms": _quantile(latencies, 0.50) * 1000.0,
        "p99_ms": _quantile(latencies, 0.99) * 1000.0,
        "mean_batch_size": (batched_queries / batches) if batches else 0.0,
        "queue_depth_high_water": metrics.gauge("serve.queue_depth").high_water,
    }


def run(
    size: int,
    num_clients: int,
    requests_per_client: int,
    identity_queries: int,
    seed: int = 42,
) -> dict:
    dataset = make_dataset("CU1", size=size, num_clean=max(50, size // 10), seed=seed)
    strings = dataset.strings
    step = max(1, len(strings) // 16)
    queries = strings[::step][:16]

    # Identity guard: its own server so the load metrics stay clean.
    service = SimilarityService(max_concurrency=4, max_queue=64, batch_window=0.002)
    with _ServerThread(service) as server:
        client = ServeClient(server.host, server.port)
        corpus_id = client.register_corpus(strings)
        client.close()
        mismatches = check_identity(
            server, corpus_id, strings, queries[:identity_queries]
        )

    scenarios = []
    for label, window in (("unbatched", 0.0), ("batched", 0.002)):
        service = SimilarityService(
            max_concurrency=4,
            max_queue=max(64, num_clients * requests_per_client),
            batch_window=window,
            batch_max=32,
        )
        with _ServerThread(service) as server:
            client = ServeClient(server.host, server.port)
            corpus_id = client.register_corpus(strings)
            # Warm the fitted state so the load measures serving, not fitting.
            client.top_k(corpus_id, queries[0], k=TOP_K)
            client.close()
            row = run_load(
                server,
                corpus_id,
                queries,
                num_clients=num_clients,
                requests_per_client=requests_per_client,
                target_qps_per_client=25.0,
            )
        row["scenario"] = label
        row["batch_window"] = window
        scenarios.append(row)

    return bench_envelope(
        benchmark="serving",
        relation={"generator": "UIS company names (CU1)", "size": len(strings)},
        config={
            "top_k": TOP_K,
            "num_clients": num_clients,
            "requests_per_client": requests_per_client,
            "seed": seed,
            "cpu_count": os.cpu_count(),
            "predicates_identity_checked": len(
                SimilarityEngine.available_predicates()
            ),
        },
        results=scenarios,
        identity_mismatches=mismatches,
    )


def check(report: dict) -> list:
    """Guard conditions; returns a list of human-readable failures."""
    failures = list(report["identity_mismatches"])
    for entry in report["results"]:
        label = entry["scenario"]
        if entry["num_clients"] < 8:
            failures.append(f"{label}: fewer than 8 concurrent clients")
        if entry["ok"] == 0:
            failures.append(f"{label}: no request succeeded")
        if entry["failed"]:
            failures.append(f"{label}: {entry['failed']} hard failures")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus, identity guard + short load burst (CI perf-smoke job)",
    )
    parser.add_argument("--size", type=int, default=None, help="relation size")
    parser.add_argument(
        "--clients", type=int, default=8, help="concurrent client threads (>= 8)"
    )
    parser.add_argument(
        "--requests", type=int, default=None, help="requests per client"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=_HERE.parent / "BENCH_serving.json",
        help="output JSON path (default: repo root BENCH_serving.json)",
    )
    args = parser.parse_args(argv)

    size = args.size or (300 if args.smoke else 3000)
    requests_per_client = args.requests or (6 if args.smoke else 40)
    identity_queries = 2 if args.smoke else 4
    report = run(
        size=size,
        num_clients=args.clients,
        requests_per_client=requests_per_client,
        identity_queries=identity_queries,
    )
    report["smoke"] = bool(args.smoke)

    failures = check(report)
    report["failures"] = failures

    checked = report["config"]["predicates_identity_checked"]
    print(
        f"identity guard: {checked} predicates served bit-identically"
        if not report["identity_mismatches"]
        else f"identity guard: {len(report['identity_mismatches'])} MISMATCHES"
    )
    for entry in report["results"]:
        print(
            f"{entry['scenario']:>10}  {entry['num_clients']} clients x"
            f"{entry['requests_per_client']} requests: "
            f"{entry['qps']:.0f} q/s, p50 {entry['p50_ms']:.1f} ms, "
            f"p99 {entry['p99_ms']:.1f} ms, "
            f"mean batch {entry['mean_batch_size']:.2f}, "
            f"429s {entry['rejected_429']}"
        )

    if not args.smoke:
        args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("serving layer exact under concurrent load")
    return 0


def test_serving(benchmark):
    """Pytest harness entry: small-scale run with the identity guards."""
    report = benchmark.pedantic(
        lambda: run(
            size=300, num_clients=8, requests_per_client=4, identity_queries=2
        ),
        rounds=1,
        iterations=1,
    )
    failures = check(report)
    assert not failures, failures


if __name__ == "__main__":
    sys.exit(main())
