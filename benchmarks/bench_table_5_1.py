"""Experiment E1 -- Table 5.1: statistics of the clean datasets.

The paper reports, for its two clean corpora:

    dataset         #tuples   avg. tuple length   #words/tuple
    Company Names      2139               21.03           2.92
    DBLP Titles       10425               33.55           4.53

We regenerate both synthetic stand-in corpora and report the same three
statistics; the benchmark measures corpus generation time.
"""

from __future__ import annotations

from _bench_support import format_table, record_report

from repro.datagen.sources import (
    COMPANY_SOURCE_SIZE,
    TITLES_SOURCE_SIZE,
    company_names,
    dblp_titles,
    source_statistics,
)

PAPER_ROWS = {
    "Company Names": (2139, 21.03, 2.92),
    "DBLP Titles": (10425, 33.55, 4.53),
}


def _build_report() -> str:
    corpora = {
        "Company Names": company_names(COMPANY_SOURCE_SIZE),
        "DBLP Titles": dblp_titles(TITLES_SOURCE_SIZE),
    }
    rows = []
    for name, strings in corpora.items():
        stats = source_statistics(strings)
        paper = PAPER_ROWS[name]
        rows.append(
            [
                name,
                stats.num_tuples,
                f"{stats.average_length:.2f}",
                f"{stats.average_words:.2f}",
                paper[0],
                f"{paper[1]:.2f}",
                f"{paper[2]:.2f}",
            ]
        )
    return format_table(
        ["dataset", "#tuples", "avg len", "words/tuple",
         "paper #tuples", "paper avg len", "paper words"],
        rows,
    )


def test_table_5_1_clean_dataset_statistics(benchmark):
    table = benchmark(_build_report)
    record_report(
        "table_5_1",
        "Table 5.1 -- statistics of the clean datasets",
        table,
        notes=(
            "The synthetic corpora substitute for the paper's proprietary "
            "company-names file and the DBLP titles dump; tuple counts match "
            "exactly and length statistics are in the same range."
        ),
    )
    assert "Company Names" in table
