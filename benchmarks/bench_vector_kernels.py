"""Vectorized-kernel benchmark -- numpy backend vs the pure-Python scalar path.

Times the kernelized scoring paths of :mod:`repro.core.kernels` under both
backends on a generated UIS-style company-names relation:

* ``top_k(k=10)`` -- the max-score pruned path; the numpy backend replaces
  the dict-of-partials accumulation with one unbuffered ``np.add.at`` per
  opened posting list.
* ``run_many (rank)`` -- the batch full-scoring workload through the engine;
  the numpy backend accumulates each query's whole candidate set in one
  scatter-add.

Both backends must return **bit-identical** ``(tid, score)`` lists -- the
exactness contract the kernel layer is built around; the benchmark fails on
any divergence.  Writes ``BENCH_vector_kernels.json`` with per-cell timings
and the speedup geomean.

A third section demonstrates the unlocked thread parallelism: numpy releases
the GIL inside the accumulation kernels, so the shard layer's
``executor="thread"`` finally scales.  On single-core containers (like the
recorded bench environment) the measurement is hardware-bound and
self-skips, mirroring ``bench_sharded.py``; the skip is noted in the
envelope.

Standalone usage (CI runs the smoke variant)::

    PYTHONPATH=src python benchmarks/bench_vector_kernels.py          # full
    PYTHONPATH=src python benchmarks/bench_vector_kernels.py --smoke  # tiny
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for _path in (str(_SRC), str(_HERE)):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.core import kernels  # noqa: E402
from repro.core.predicates.registry import make_predicate  # noqa: E402
from repro.datagen import make_dataset  # noqa: E402
from repro.engine import SimilarityEngine  # noqa: E402
from repro.obs import bench_envelope, perf_clock  # noqa: E402

#: Every kernelized predicate family: max-score top_k (first three) plus the
#: heap-path language models (full accumulation per query).
PREDICATES = ["bm25", "cosine", "weighted_match", "lm", "hmm"]
TOP_K = 10
THREAD_SHARDS = 4


def _pairs(ranking):
    return [(match.tid, match.score) for match in ranking]


def _timed(fn):
    started = perf_clock()
    output = fn()
    return output, perf_clock() - started


def bench_predicate(name: str, strings, queries) -> dict:
    predicate = make_predicate(name).fit(strings)
    engine = SimilarityEngine()
    query = engine.from_strings(strings).predicate(name)
    query.run_many(queries[:2], op="rank", limit=TOP_K)  # warm the fitted cache
    result: dict = {"predicate": name}

    # -- top_k(k=10), per-query ----------------------------------------------
    def topk_all():
        return [_pairs(predicate.top_k(text, TOP_K)) for text in queries]

    with kernels.use_backend("python"):
        topk_all()  # warm-up
        python_out, python_seconds = _timed(topk_all)
    with kernels.use_backend("numpy"):
        topk_all()  # warm-up
        numpy_out, numpy_seconds = _timed(topk_all)
    result["top_k"] = {
        "k": TOP_K,
        "python_seconds": python_seconds,
        "numpy_seconds": numpy_seconds,
        "python_qps": len(queries) / python_seconds if python_seconds else None,
        "numpy_qps": len(queries) / numpy_seconds if numpy_seconds else None,
        "speedup": python_seconds / numpy_seconds if numpy_seconds else None,
        "identical_results": python_out == numpy_out,
    }

    # -- run_many (batch rank) ------------------------------------------------
    def run_many():
        return [
            _pairs(ranking)
            for ranking in query.run_many(queries, op="rank", limit=TOP_K)
        ]

    with kernels.use_backend("python"):
        python_batch, python_batch_seconds = _timed(run_many)
    with kernels.use_backend("numpy"):
        numpy_batch, numpy_batch_seconds = _timed(run_many)
    result["run_many"] = {
        "op": "rank",
        "limit": TOP_K,
        "python_seconds": python_batch_seconds,
        "numpy_seconds": numpy_batch_seconds,
        "speedup": (
            python_batch_seconds / numpy_batch_seconds
            if numpy_batch_seconds
            else None
        ),
        "identical_results": python_batch == numpy_batch,
    }
    return result


def bench_threads(strings, queries) -> dict:
    """Thread-executor scaling of sharded run_many under the numpy kernels.

    Python-loop scoring holds the GIL, so threads used to buy nothing; the
    numpy kernels release it inside the accumulation, so shard tasks overlap.
    Hardware-bound: self-skips on single-core machines (note recorded).
    """
    cores = os.cpu_count() or 1
    if cores < 2:
        return {
            "skipped": True,
            "note": (
                f"thread-speedup measurement skipped: only {cores} CPU(s) "
                "available (thread parallelism is hardware-bound); re-run on "
                "a multi-core machine to record it"
            ),
        }
    engine = SimilarityEngine()
    base = engine.from_strings(strings).predicate("bm25")
    serial = base.shards(THREAD_SHARDS, executor="serial")
    threaded = base.shards(THREAD_SHARDS, executor="thread")

    def run(sharded_query):
        return [
            _pairs(ranking)
            for ranking in sharded_query.run_many(queries, op="top_k", k=TOP_K)
        ]

    with kernels.use_backend("numpy"):
        run(serial)  # warm both fitted states
        run(threaded)
        serial_out, serial_seconds = _timed(lambda: run(serial))
        thread_out, thread_seconds = _timed(lambda: run(threaded))
    return {
        "skipped": False,
        "predicate": "bm25",
        "num_shards": THREAD_SHARDS,
        "cpu_count": cores,
        "serial_seconds": serial_seconds,
        "thread_seconds": thread_seconds,
        "thread_speedup": serial_seconds / thread_seconds if thread_seconds else None,
        "identical_results": serial_out == thread_out,
    }


def run(size: int, num_queries: int, seed: int = 42) -> dict:
    dataset = make_dataset("CU1", size=size, num_clean=max(50, size // 10), seed=seed)
    strings = dataset.strings
    step = max(1, len(strings) // num_queries)
    queries = strings[::step][:num_queries]
    results = [bench_predicate(name, strings, queries) for name in PREDICATES]
    speedups = [
        entry[op]["speedup"]
        for entry in results
        for op in ("top_k", "run_many")
        if entry[op]["speedup"]
    ]
    geomean = (
        math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        if speedups
        else None
    )
    return bench_envelope(
        benchmark="vector_kernels",
        relation={"generator": "UIS company names (CU1)", "size": len(strings)},
        config={
            "top_k": TOP_K,
            "num_queries": len(queries),
            "seed": seed,
            "cpu_count": os.cpu_count(),
        },
        results=results,
        speedup_geomean=geomean,
        threads=bench_threads(strings, queries),
    )


def check(report: dict, require_speedup: float = 0.0) -> list:
    """Guard conditions; returns a list of human-readable failures."""
    failures = []
    for entry in report["results"]:
        name = entry["predicate"]
        for op in ("top_k", "run_many"):
            if not entry[op]["identical_results"]:
                failures.append(
                    f"{name}: {op} numpy results diverged from the scalar path"
                )
    threads = report.get("threads", {})
    if not threads.get("skipped") and not threads.get("identical_results", True):
        failures.append("threaded sharded results diverged from serial")
    if require_speedup:
        geomean = report["speedup_geomean"] or 0.0
        if geomean < require_speedup:
            failures.append(
                f"kernel geomean speedup {geomean:.2f}x "
                f"< required {require_speedup}x"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus, bit-identity guard only (CI perf-smoke job)",
    )
    parser.add_argument("--size", type=int, default=None, help="relation size")
    parser.add_argument("--queries", type=int, default=None, help="number of queries")
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=0.0,
        help="fail unless the numpy-vs-python geomean speedup reaches this factor",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=_HERE.parent / "BENCH_vector_kernels.json",
        help="output JSON path (default: repo root BENCH_vector_kernels.json)",
    )
    args = parser.parse_args(argv)

    if not kernels.numpy_available():
        print(
            "numpy unavailable: nothing to compare (the pure-Python fallback "
            "is the only backend); install the 'fast' extra to benchmark"
        )
        return 0

    size = args.size or (500 if args.smoke else 10_000)
    num_queries = args.queries or (10 if args.smoke else 50)
    report = run(size=size, num_queries=num_queries)
    report["smoke"] = bool(args.smoke)

    failures = check(report, require_speedup=args.require_speedup)
    report["failures"] = failures

    for entry in report["results"]:
        top_k = entry["top_k"]
        batch = entry["run_many"]
        print(
            f"{entry['predicate']:>15}  top_k(k={top_k['k']}): "
            f"{top_k['speedup']:.2f}x ({top_k['python_qps']:.0f} -> "
            f"{top_k['numpy_qps']:.0f} q/s)  |  run_many(rank): "
            f"{batch['speedup']:.2f}x  identical="
            f"{top_k['identical_results'] and batch['identical_results']}"
        )
    if report["speedup_geomean"]:
        print(
            f"{'geomean':>15}  numpy kernels {report['speedup_geomean']:.2f}x "
            f"vs pure-Python scalar path"
        )
    threads = report["threads"]
    if threads.get("skipped"):
        print(f"{'threads':>15}  {threads['note']}")
    else:
        print(
            f"{'threads':>15}  {threads['num_shards']} shards on "
            f"{threads['cpu_count']} CPU(s): thread executor "
            f"{threads['thread_speedup']:.2f}x vs serial  "
            f"identical={threads['identical_results']}"
        )

    if not args.smoke:
        args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("numpy kernels bit-identical to the scalar path")
    return 0


def test_vector_kernels(benchmark):
    """Pytest harness entry: small-scale run with the bit-identity guards."""
    if not kernels.numpy_available():
        import pytest

        pytest.skip("numpy unavailable")
    report = benchmark.pedantic(
        lambda: run(size=1500, num_queries=20), rounds=1, iterations=1
    )
    failures = check(report)
    assert not failures, failures
    from _bench_support import format_table, record_report

    rows = [
        [
            entry["predicate"],
            f"{entry['top_k']['speedup']:.2f}x",
            f"{entry['run_many']['speedup']:.2f}x",
        ]
        for entry in report["results"]
    ]
    record_report(
        "vector_kernels",
        f"Vectorized kernels -- {report['relation']['size']} tuples, "
        f"k={TOP_K}, numpy vs pure-Python",
        format_table(["predicate", "top_k speedup", "run_many speedup"], rows),
        notes=(
            "Both backends must return bit-identical (tid, score) lists; "
            "the standalone script writes BENCH_vector_kernels.json at "
            "full scale."
        ),
    )


if __name__ == "__main__":
    raise SystemExit(main())
