"""Quickstart: approximate selection over a small relation of company names.

Run with::

    python examples/quickstart.py

The example indexes a handful of company names under several similarity
predicates and shows how the same dirty query is ranked by each of them,
illustrating the paper's predicate classes (overlap, aggregate weighted,
language modeling, edit based and combination).
"""

from __future__ import annotations

from repro import ApproximateSelector, available_predicates

COMPANIES = [
    "Morgan Stanley Group Inc.",
    "Stanley Morgan Group Incorporated",
    "Goldman Sachs Group Inc.",
    "AT&T Incorporated",
    "AT&T Inc.",
    "IBM Incorporated",
    "Beijing Hotel",
    "Hotel Beijing",
    "Beijing Labs",
    "Silicon Valley Group, Inc.",
    "Pacific Gas and Electric Company",
    "Granite Construction Incorporated",
]

# A query with a typo, a dropped word and an abbreviation change -- the three
# error types the paper's benchmark injects.
QUERY = "Morgn Stanley Group Incorporated"


def main() -> None:
    print(f"Base relation: {len(COMPANIES)} company names")
    print(f"Query string : {QUERY!r}\n")

    print("=== Ranked retrieval with BM25 (the paper's best predicate) ===")
    selector = ApproximateSelector(COMPANIES, predicate="bm25")
    for result in selector.top_k(QUERY, k=3):
        print(f"  score={result.score:8.3f}  tid={result.tid:2d}  {result.text}")

    print("\n=== Thresholded approximate selection with Jaccard ===")
    jaccard = ApproximateSelector(COMPANIES, predicate="jaccard")
    for result in jaccard.select(QUERY, threshold=0.45):
        print(f"  score={result.score:8.3f}  tid={result.tid:2d}  {result.text}")

    print("\n=== Top match for every registered predicate ===")
    for name in available_predicates():
        selector = ApproximateSelector(COMPANIES, predicate=name)
        top = selector.top_k(QUERY, k=1)
        match = top[0].text if top else "(no candidate)"
        print(f"  {name:16s} -> {match}")


if __name__ == "__main__":
    main()
