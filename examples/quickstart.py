"""Quickstart: the unified similarity engine over a small relation of names.

Run with::

    python examples/quickstart.py

The example drives one :class:`repro.SimilarityEngine` query through the
operations the paper studies -- top-k retrieval, thresholded selection --
in both realizations (direct in-memory Python and declarative SQL on
SQLite), batches a workload with ``run_many`` and prints an ``explain()``
report with the emitted SQL.
"""

from __future__ import annotations

from repro import SimilarityEngine, available_predicates

COMPANIES = [
    "Morgan Stanley Group Inc.",
    "Stanley Morgan Group Incorporated",
    "Goldman Sachs Group Inc.",
    "AT&T Incorporated",
    "AT&T Inc.",
    "IBM Incorporated",
    "Beijing Hotel",
    "Hotel Beijing",
    "Beijing Labs",
    "Silicon Valley Group, Inc.",
    "Pacific Gas and Electric Company",
    "Granite Construction Incorporated",
]

# A query with a typo, a dropped word and an abbreviation change -- the three
# error types the paper's benchmark injects.
QUERY = "Morgn Stanley Group Incorporated"


def main() -> None:
    print(f"Base relation: {len(COMPANIES)} company names")
    print(f"Query string : {QUERY!r}\n")

    engine = SimilarityEngine()
    base = engine.from_strings(COMPANIES)

    print("=== Ranked retrieval with BM25 (the paper's best predicate) ===")
    for result in base.predicate("bm25").top_k(QUERY, 3):
        print(f"  score={result.score:8.3f}  tid={result.tid:2d}  {result.string}")

    print("\n=== The same query, realized declaratively in SQL on SQLite ===")
    declarative = base.predicate("bm25").realization("declarative").backend("sqlite")
    for result in declarative.top_k(QUERY, 3):
        print(f"  score={result.score:8.3f}  tid={result.tid:2d}  {result.string}")

    print("\n=== Thresholded approximate selection with Jaccard ===")
    for result in base.predicate("jaccard").select(QUERY, 0.45):
        print(f"  score={result.score:8.3f}  tid={result.tid:2d}  {result.string}")

    print("\n=== Top match for every registered predicate (one batch each) ===")
    for name in available_predicates():
        top = base.predicate(name).run_many([QUERY], op="top_k", k=1)[0]
        match = top[0].string if top else "(no candidate)"
        print(f"  {name:16s} -> {match}")

    print("\n=== explain(): plan, emitted SQL, candidate counts ===")
    print(declarative.explain(QUERY, k=3).describe())


if __name__ == "__main__":
    main()
