"""Data de-duplication on a generated dirty dataset.

Run with::

    python examples/deduplication.py

The paper's motivating application is data cleaning: a relation accumulates
erroneous duplicates (typos, token swaps, abbreviation changes) and
approximate selections retrieve every version of a record.  This example

1. generates a dirty company-names dataset (the CU1 configuration of Table
   5.3, scaled down),
2. runs an approximate selection for a sample of records under two
   predicates (plain Jaccard and BM25), and
3. reports mean average precision against the generator's ground-truth
   clusters, reproducing the accuracy gap the paper measures.
"""

from __future__ import annotations

from repro import ApproximateSelector
from repro.datagen import make_dataset
from repro.eval import ExperimentRunner

DATASET_SIZE = 600
NUM_CLEAN = 100
NUM_QUERIES = 40


def main() -> None:
    dataset = make_dataset("CU1", size=DATASET_SIZE, num_clean=NUM_CLEAN, seed=2025)
    print(
        f"Generated dirty dataset CU1: {len(dataset)} tuples, "
        f"{dataset.num_clusters()} ground-truth clusters"
    )
    sample = dataset.records[1]
    clean = next(
        dataset.records[tid]
        for tid in dataset.cluster_members(sample.cluster_id)
        if dataset.records[tid].is_clean
    )
    print(f"  clean tuple    : {clean.text!r}")
    print(f"  dirty duplicate: {sample.text!r}\n")

    print("=== Retrieving the duplicates of one record (BM25, top cluster size) ===")
    selector = ApproximateSelector(dataset.strings, predicate="bm25")
    relevant = set(dataset.relevant_for(sample.tid))
    hits = 0
    for result in selector.top_k(sample.text, k=len(relevant)):
        marker = "+" if result.tid in relevant else " "
        hits += result.tid in relevant
        print(f"  [{marker}] score={result.score:8.3f}  {result.text}")
    print(f"  -> {hits}/{len(relevant)} true duplicates in the top-{len(relevant)}\n")

    print("=== Accuracy over a query workload (mean average precision) ===")
    runner = ExperimentRunner(dataset, "CU1 (scaled)")
    for predicate in ("jaccard", "cosine", "bm25", "hmm"):
        result = runner.evaluate(predicate, num_queries=NUM_QUERIES)
        print(
            f"  {result.predicate_name:12s} MAP={result.mean_average_precision:.3f} "
            f"maxF1={result.mean_max_f1:.3f}"
        )
    print(
        "\nThe weighted probabilistic predicates (BM25, HMM) retrieve duplicates "
        "more accurately than the unweighted overlap predicates, matching the "
        "paper's findings on dirty data."
    )


if __name__ == "__main__":
    main()
