"""Record linkage and de-duplication with approximate joins.

Run with::

    python examples/record_linkage.py

The paper frames approximate selections as the building block of record
linkage (approximate joins) for data cleaning.  This example exercises that
generalization:

1. two "sources" are simulated -- a clean master list of company names and a
   dirty feed containing erroneous duplicates of some of them;
2. an :class:`ApproximateJoiner` links every dirty record to its best master
   record;
3. a :class:`Deduplicator` clusters the dirty feed itself and the clustering
   is scored against the generator's ground truth.
"""

from __future__ import annotations

from repro.core import ApproximateJoiner, Deduplicator
from repro.datagen import DatasetGenerator, GeneratorParameters, company_names


def main() -> None:
    clean_master = company_names(count=150, seed=41)
    generator = DatasetGenerator(clean_master)
    dirty_feed = generator.generate(
        GeneratorParameters(
            size=300,
            num_clean=80,
            erroneous_fraction=0.8,
            edit_extent=0.15,
            token_swap_rate=0.25,
            abbreviation_rate=0.5,
            seed=99,
        )
    )
    print(f"Master list : {len(clean_master)} clean company names")
    print(f"Dirty feed  : {len(dirty_feed)} records, {dirty_feed.num_clusters()} true entities\n")

    print("=== Linking dirty records to the master list (BM25, best match) ===")
    joiner = ApproximateJoiner(clean_master, predicate="bm25", threshold=0.0)
    sample = dirty_feed.records[:8]
    for record in sample:
        matches = joiner.join([record.text], top_k=1)
        linked = matches[0].right_text if matches else "(no match)"
        print(f"  {record.text[:42]:42s} -> {linked}")

    print("\n=== De-duplicating the dirty feed itself (Jaccard self-join) ===")
    dedup = Deduplicator(dirty_feed.strings, predicate="jaccard", threshold=0.55)
    clusters = dedup.clusters()
    multi = [cluster for cluster in clusters if len(cluster) > 1]
    print(f"  {len(clusters)} clusters found, {len(multi)} with more than one record")
    example = max(multi, key=len)
    print(f"  largest cluster (representative: {example.representative!r}):")
    for tid in example.members[:6]:
        print(f"    - {dirty_feed.strings[tid]}")

    quality = dedup.quality(dirty_feed.cluster_ids)
    print(
        f"\n  pairwise quality vs. ground truth: precision={quality.precision:.3f} "
        f"recall={quality.recall:.3f} F1={quality.f1:.3f}"
    )
    print(
        "\nApproximate joins reuse the same similarity predicates the paper "
        "benchmarks for selections; the predicate and threshold trade precision "
        "against recall exactly as in the accuracy experiments."
    )


if __name__ == "__main__":
    main()
