"""Tuning the IDF-pruning performance enhancement (paper section 5.6).

Run with::

    python examples/pruning_tuning.py

The paper's most effective performance enhancement drops stopword-like
q-grams whose idf falls below ``MIN(idf) + rate * (MAX(idf) - MIN(idf))``
before any weights are computed.  This example sweeps the pruning rate on a
dirty dataset and reports, for two predicates, how accuracy (MAP) and query
time respond -- reproducing the shape of Figure 5.5: a moderate rate buys a
large speedup at (nearly) no accuracy cost, and even *helps* the unweighted
predicates.
"""

from __future__ import annotations

from repro.datagen import make_dataset
from repro.eval import ExperimentRunner, IdfPruner
from repro.obs import perf_clock

RATES = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
PREDICATES = ["jaccard", "bm25"]
NUM_QUERIES = 30


def main() -> None:
    dataset = make_dataset("CU1", size=500, num_clean=80, seed=17)
    runner = ExperimentRunner(dataset, "CU1 (scaled)")
    queries = [dataset.strings[tid] for tid in runner.query_workload(NUM_QUERIES, seed=1)]

    print(f"Dataset: {len(dataset)} tuples, {dataset.num_clusters()} clusters")
    print(f"{'predicate':10s} {'rate':>5s} {'kept%':>6s} {'MAP':>7s} {'query ms':>9s}")
    for name in PREDICATES:
        for rate in RATES:
            pruner = IdfPruner(rate).fit(dataset.strings)
            predicate = pruner.apply(name, dataset.strings)
            started = perf_clock()
            for query in queries:
                predicate.rank(query)
            elapsed_ms = (perf_clock() - started) * 1000 / len(queries)
            accuracy = runner.evaluate(predicate, num_queries=NUM_QUERIES)
            print(
                f"{name:10s} {rate:5.2f} {pruner.retained_fraction * 100:6.1f} "
                f"{accuracy.mean_average_precision:7.3f} {elapsed_ms:9.2f}"
            )
        print()
    print(
        "Moderate pruning rates (0.2-0.3) cut the token table substantially and "
        "speed up queries while MAP stays flat (and improves for the unweighted "
        "Jaccard predicate), as reported in the paper."
    )


if __name__ == "__main__":
    main()
