"""The declarative path: similarity predicates as plain SQL.

Run with::

    python examples/declarative_sql.py

The paper's core idea is that approximate selections can be realized with
standard SQL over token/weight tables, so they integrate with any
application that already talks to a relational database.  This example runs
the BM25 and Language-Modeling predicates *declaratively*:

1. the base relation is loaded into ``BASE_TABLE`` and tokenized into
   ``BASE_TOKENS`` (Appendix A of the paper),
2. preprocessing SQL materializes the weight tables,
3. a single query-time SQL statement ranks the tuples,

once on the from-scratch in-memory engine and once on SQLite, and checks the
two backends agree with the direct in-memory implementation.
"""

from __future__ import annotations

from repro import ApproximateSelector
from repro.backends import MemoryBackend, SQLiteBackend
from repro.declarative import make_declarative_predicate

COMPANIES = [
    "Morgan Stanley Group Inc.",
    "Stanley Morgan Group Incorporated",
    "Goldman Sachs Group Inc.",
    "AT&T Incorporated",
    "AT&T Inc.",
    "IBM Incorporated",
    "Beijing Hotel",
    "Hotel Beijing",
    "Silicon Valley Group, Inc.",
]

QUERY = "Morgn Stanley Grop Inc."


def show_backend(name: str, backend) -> None:
    print(f"--- {name} backend ---")
    predicate = make_declarative_predicate("bm25", backend=backend)
    predicate.preprocess(COMPANIES)

    tables = [
        ("BASE_TABLE", "tid, string"),
        ("BASE_TOKENS", "tid, token (q-grams)"),
        ("BASE_BM25W", "tid, token, BM25 weight"),
    ]
    for table, description in tables:
        count = backend.row_count(table)
        print(f"  {table:14s} {count:5d} rows   ({description})")

    print(f"  query: {QUERY!r}")
    for scored in predicate.rank(QUERY, limit=3):
        print(f"    score={scored.score:8.3f}  {COMPANIES[scored.tid]}")
    print()


def main() -> None:
    show_backend("in-memory SQL engine", MemoryBackend())
    sqlite_backend = SQLiteBackend()
    show_backend("SQLite", sqlite_backend)
    sqlite_backend.close()

    print("--- cross-check against the direct implementation ---")
    direct = ApproximateSelector(COMPANIES, predicate="bm25")
    declarative = make_declarative_predicate("bm25").preprocess(COMPANIES)
    direct_top = [r.tid for r in direct.top_k(QUERY, k=3)]
    declarative_top = [s.tid for s in declarative.rank(QUERY, limit=3)]
    print(f"  direct      top-3 tids: {direct_top}")
    print(f"  declarative top-3 tids: {declarative_top}")
    assert direct_top == declarative_top
    print("  rankings agree.")

    print("\n--- a second predicate, Language Modeling, on SQLite ---")
    backend = SQLiteBackend()
    lm = make_declarative_predicate("lm", backend=backend).preprocess(COMPANIES)
    for scored in lm.rank(QUERY, limit=3):
        print(f"    score={scored.score:10.3e}  {COMPANIES[scored.tid]}")
    backend.close()


if __name__ == "__main__":
    main()
